"""Additional property-based tests: subset matcher, popularity decay,
bandwidth conservation, temporal profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.bandwidth import bandwidth_series
from repro.core.analysis.temporal import transfer_volume_profile
from repro.core.matching.base import CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.subset import SubsetMatcher
from repro.rucio.did import DID
from repro.rucio.popularity import PopularityTracker

from tests.helpers import make_file, make_job, make_transfer


# -- subset matcher ---------------------------------------------------------------


@st.composite
def polluted_population(draw):
    """A clean job/file/transfer triple plus random duplicate transfers."""
    n_files = draw(st.integers(min_value=1, max_value=4))
    sizes = [draw(st.integers(min_value=1, max_value=5000)) for _ in range(n_files)]
    job = make_job(nin=sum(sizes), end=5000.0)
    files = [make_file(lfn=f"f{i}", size=sizes[i]) for i in range(n_files)]
    transfers = [
        make_transfer(row_id=i + 1, lfn=f"f{i}", size=sizes[i],
                      start=float(10 + i), end=float(20 + i))
        for i in range(n_files)
    ]
    n_dupes = draw(st.integers(min_value=0, max_value=4))
    for k in range(n_dupes):
        i = draw(st.integers(min_value=0, max_value=n_files - 1))
        transfers.append(make_transfer(
            row_id=100 + k, lfn=f"f{i}", size=sizes[i],
            start=float(500 + k), end=float(600 + k)))
    return job, files, transfers


@given(polluted_population())
@settings(max_examples=100, deadline=None)
def test_subset_always_matches_polluted_clean_core(pop):
    """Whatever duplicates pollute the candidates, subset matching finds
    a byte-exact selection (the clean core exists by construction)."""
    job, files, transfers = pop
    index = CandidateIndex(files, transfers)
    res = SubsetMatcher().run([job], index, len(transfers))
    assert res.n_matched_jobs == 1
    selected = res.matches[0].transfers
    assert sum(t.file_size for t in selected) == job.ninputfilebytes
    # at most one candidate per lfn
    lfns = [t.lfn for t in selected]
    assert len(lfns) == len(set(lfns))


@given(polluted_population())
@settings(max_examples=60, deadline=None)
def test_subset_dominates_exact(pop):
    job, files, transfers = pop
    index = CandidateIndex(files, transfers)
    exact = ExactMatcher().run([job], index, len(transfers))
    subset = SubsetMatcher().run([job], index, len(transfers))
    assert exact.n_matched_jobs <= subset.n_matched_jobs


# -- popularity tracker ------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_popularity_monotone_decay(times):
    """A single access only ever decays as time moves forward."""
    t = PopularityTracker(half_life=1000.0)
    d = DID("s", "ds")
    t.record_access(d, now=0.0)
    scores = [t.score(d, now) for now in sorted(times)]
    for a, b in zip(scores, scores[1:]):
        assert b <= a + 1e-9
    assert all(s > 0 for s in scores)


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_popularity_additive_at_same_instant(n):
    t = PopularityTracker()
    d = DID("s", "ds")
    for _ in range(n):
        t.record_access(d, now=42.0)
    assert t.score(d, now=42.0) == pytest.approx(float(n))


# -- conservation laws ----------------------------------------------------------------


@st.composite
def random_transfers(draw):
    n = draw(st.integers(min_value=0, max_value=20))
    out = []
    for i in range(n):
        start = draw(st.floats(min_value=0, max_value=900))
        dur = draw(st.floats(min_value=0, max_value=100))
        size = draw(st.integers(min_value=1, max_value=10**6))
        out.append(make_transfer(row_id=i + 1, size=size, start=start,
                                 end=start + dur))
    return out


@given(random_transfers())
@settings(max_examples=80, deadline=None)
def test_bandwidth_series_conserves_bytes(transfers):
    """Bucketing spreads but never creates or destroys bytes (within
    the window that fully contains every transfer)."""
    s = bandwidth_series(transfers, 0.0, 1100.0, bucket_seconds=50.0)
    total = sum(t.file_size for t in transfers)
    assert s.bytes_per_bucket.sum() == pytest.approx(total, rel=1e-9, abs=1e-6)


@given(random_transfers())
@settings(max_examples=60, deadline=None)
def test_temporal_profile_conserves_started_bytes(transfers):
    prof = transfer_volume_profile(transfers, 0.0, 1100.0, bucket_seconds=100.0)
    total = sum(t.file_size for t in transfers)
    assert prof.total == pytest.approx(total)


@given(random_transfers(), st.floats(min_value=10, max_value=500))
@settings(max_examples=60, deadline=None)
def test_temporal_gini_bucket_invariance_bounds(transfers, bucket):
    prof = transfer_volume_profile(transfers, 0.0, 1100.0, bucket_seconds=bucket)
    g = prof.temporal_gini()
    assert -1e-9 <= g <= 1.0


# -- differential test: fast vs reference bandwidth implementation -------------------


@st.composite
def boundary_transfers(draw):
    """Transfers that may straddle the analysis window on either side."""
    n = draw(st.integers(min_value=0, max_value=15))
    out = []
    for i in range(n):
        start = draw(st.floats(min_value=-300, max_value=1200))
        dur = draw(st.floats(min_value=0.001, max_value=500))
        size = draw(st.integers(min_value=1, max_value=10**6))
        out.append(make_transfer(row_id=i + 1, size=size,
                                 start=max(0.0, start), end=max(0.0, start) + dur))
    return out


@given(boundary_transfers(), st.floats(min_value=20, max_value=400))
@settings(max_examples=100, deadline=None)
def test_fast_bandwidth_matches_reference(transfers, bucket):
    from repro.core.analysis.bandwidth import bandwidth_series_fast

    ref = bandwidth_series(transfers, 0.0, 1000.0, bucket_seconds=bucket)
    fast = bandwidth_series_fast(transfers, 0.0, 1000.0, bucket_seconds=bucket)
    assert fast.bytes_per_bucket.shape == ref.bytes_per_bucket.shape
    np.testing.assert_allclose(
        fast.bytes_per_bucket, ref.bytes_per_bucket, rtol=1e-7, atol=1e-3)
