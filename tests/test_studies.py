"""Tests for the packaged studies (eight-day / three-month) as wholes."""

import pytest

from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.scenarios.threemonth import ThreeMonthConfig, ThreeMonthStudy


class TestEightDayStudy:
    def test_config_propagates(self):
        cfg = EightDayConfig(seed=9, days=0.25, intensity=2.0,
                             analysis_tasks_per_hour=4.0)
        study = EightDayStudy(cfg)
        wl = study.harness.config.workload
        assert wl.duration == pytest.approx(0.25 * 86400.0)
        assert wl.analysis_tasks_per_hour == pytest.approx(8.0)

    def test_grid_scale_applied(self):
        cfg = EightDayConfig(seed=9, days=0.25, grid_scale=0.35)
        study = EightDayStudy(cfg)
        # scaled grid has smaller sites than the full preset
        from repro.grid.presets import build_wlcg
        full = build_wlcg(seed=9)
        scaled_slots = sum(s.compute_slots for s in study.harness.topology.real_sites())
        full_slots = sum(s.compute_slots for s in full.real_sites())
        assert scaled_slots < full_slots * 0.6

    def test_lazy_caching(self, small_study):
        assert small_study.source is small_study.source
        assert small_study.matching_report() is small_study.matching_report()

    def test_telemetry_before_run_raises(self):
        study = EightDayStudy(EightDayConfig(days=0.1))
        with pytest.raises(RuntimeError):
            _ = study.telemetry


class TestThreeMonthStudy:
    @pytest.fixture(scope="class")
    def study(self):
        cfg = ThreeMonthConfig(seed=4, days=0.5,
                               analysis_tasks_per_hour=4.0,
                               production_tasks_per_hour=0.5,
                               background_transfers_per_hour=60.0)
        return ThreeMonthStudy(cfg).run()

    def test_produces_matrix_material(self, study):
        tel = study.telemetry
        assert len(tel.transfers) > 50
        assert len(study.site_names()) == 111

    def test_matrix_has_fig3_structure(self, study):
        from repro.core.analysis.matrix import build_transfer_matrix

        m = build_transfer_matrix(study.telemetry.transfers, study.site_names())
        assert m.total_volume > 0
        assert 0.0 < m.local_fraction <= 1.0
        assert m.n_sites == 111
