"""Tests for the streaming ingest + incremental matching subsystem.

The load-bearing requirement is **bit-identical accumulation**: after a
streaming replay of a window — in any delivery order, at any micro-batch
size, with any sufficient lateness bound — the accumulated state equals
the batch pipeline's report via dataclass ``==``, for Exact/RM1/RM2.
The hypothesis suite drives exactly that property; the unit tests cover
the building blocks (event log, watermark, incremental index freeze,
``ingest_batch``, folds, metrics, the live collector tap).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.queuing import timings_for_result
from repro.core.analysis.summary import headline_stats
from repro.core.analysis.thresholds import threshold_sweep
from repro.core.matching.base import BaseMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.exec import ArtifactCache, WindowPlan
from repro.grid.presets import build_mini
from repro.metastore.index import FieldIndex
from repro.metastore.opensearch import OpenSearchLike
from repro.metastore.query import Range
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.stream import (
    EventKind,
    EventLog,
    IncrementalMatcher,
    StreamingCollector,
    StreamProcessor,
    WatermarkTracker,
)
from repro.workload.generator import WorkloadConfig

from tests.helpers import make_file, make_job, make_transfer

# -- shared material --------------------------------------------------------------
#
# One 24-hour mini-campaign, streamed live through StreamingCollector.
# Small enough to simulate in under a second, big enough to produce
# real matches (dozens per method) — every replay-parity test below
# reuses its event log and batch report.


@pytest.fixture(scope="module")
def live_harness() -> SimulationHarness:
    cfg = HarnessConfig(
        seed=11,
        workload=WorkloadConfig(
            duration=24 * 3600.0,
            analysis_tasks_per_hour=6.0,
            production_tasks_per_hour=0.5,
            background_transfers_per_hour=30.0,
        ),
        drain=12 * 3600.0,
    )
    harness = SimulationHarness(
        cfg, topology=build_mini(seed=11), collector_factory=StreamingCollector
    )
    harness.run()
    return harness


@pytest.fixture(scope="module")
def live_log(live_harness) -> EventLog:
    return live_harness.collector.log


@pytest.fixture(scope="module")
def live_batch(live_harness, live_log):
    """The batch pipeline over exactly the log's records."""
    source = OpenSearchLike()
    source.ingest_batch(
        jobs=[e.record for e in live_log if e.kind is EventKind.JOB],
        files=[f for e in live_log if e.kind is EventKind.JOB for f in e.files],
        transfers=[e.record for e in live_log if e.kind is EventKind.TRANSFER],
    )
    t0, t1 = live_harness.window
    return MatchingPipeline(
        source, known_sites=live_harness.known_site_names()
    ).run(t0, t1)


def _disorder_bound(events) -> float:
    """Max lateness any transfer in this delivery order exhibits."""
    seen = float("-inf")
    bound = 0.0
    for e in events:
        if e.kind is EventKind.TRANSFER:
            seen = max(seen, e.time)
            bound = max(bound, seen - e.time)
    return bound


def _stream(live_harness, events, batches, lateness=0.0) -> StreamProcessor:
    t0, t1 = live_harness.window
    proc = StreamProcessor(
        t0, t1, known_sites=live_harness.known_site_names(), lateness=lateness
    )
    proc.run(batches)
    return proc


# -- watermark --------------------------------------------------------------------


class TestWatermarkTracker:
    def test_starts_at_minus_inf(self):
        w = WatermarkTracker()
        assert w.watermark == float("-inf")
        assert w.max_event_time == float("-inf")
        assert not w.closed

    def test_watermark_trails_max_by_lateness(self):
        w = WatermarkTracker(lateness=5.0)
        w.observe(10.0)
        assert w.max_event_time == 10.0
        assert w.watermark == 5.0
        assert w.lag == 5.0

    def test_watermark_is_monotone(self):
        w = WatermarkTracker()
        w.observe(10.0)
        w.observe(3.0)  # out-of-order event cannot move it backwards
        assert w.watermark == 10.0

    def test_late_and_close_predicates(self):
        w = WatermarkTracker(lateness=5.0)
        w.observe(10.0)
        assert w.is_late(4.9)
        assert not w.is_late(5.0)
        assert w.can_close(5.0)
        assert not w.can_close(5.1)

    def test_close_flushes_everything(self):
        w = WatermarkTracker(lateness=100.0)
        w.observe(10.0)
        w.close()
        assert w.closed
        assert w.watermark == float("inf")
        assert w.lag == 0.0
        assert w.can_close(1e18)

    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError):
            WatermarkTracker(lateness=-1.0)

    def test_lag_is_zero_before_first_event(self):
        # Regression: both terms are -inf pre-event and the raw
        # subtraction is NaN; the defined pre-event lag is 0.0.
        w = WatermarkTracker(lateness=5.0)
        assert w.lag == 0.0
        assert not np.isnan(w.lag)
        assert not w.has_observed
        w.observe(10.0)
        assert w.has_observed
        assert w.lag == 5.0


# -- event log --------------------------------------------------------------------


class TestEventLog:
    def _telemetry(self, live_harness):
        return live_harness.telemetry()

    def test_seqs_are_snapshot_positions(self, live_harness):
        """Sequence numbers equal bulk-ingest doc ids, even after the
        time sort and even for kinds whose earlier rows were filtered."""
        tele = self._telemetry(live_harness)
        t0, t1 = live_harness.window
        log = EventLog.from_telemetry(tele, t0, t1)
        for ev in log:
            snapshot = tele.jobs if ev.kind is EventKind.JOB else tele.transfers
            assert snapshot[ev.seq] is ev.record

    def test_events_are_time_ordered(self, live_harness):
        tele = self._telemetry(live_harness)
        t0, t1 = live_harness.window
        log = EventLog.from_telemetry(tele, t0, t1)
        times = [e.time for e in log]
        assert times == sorted(times)

    def test_transfers_sort_before_jobs_at_equal_time(self):
        job = make_job(pandaid=1, end=100.0)
        transfer = make_transfer(row_id=1, start=100.0, end=150.0)
        log = EventLog.from_telemetry(
            type("T", (), {"jobs": [job], "files": [], "transfers": [transfer]})(),
            0.0,
            1000.0,
        )
        assert [e.kind for e in log] == [EventKind.TRANSFER, EventKind.JOB]

    def test_window_bounds_trim_like_preselection(self):
        jobs = [make_job(pandaid=1, end=50.0), make_job(pandaid=2, end=150.0),
                make_job(pandaid=3, end=None)]
        transfers = [make_transfer(row_id=1, start=50.0, end=60.0),
                     make_transfer(row_id=2, start=99.9, end=110.0),
                     make_transfer(row_id=3, start=100.0, end=110.0)]
        tele = type("T", (), {"jobs": jobs, "files": [], "transfers": transfers})()
        log = EventLog.from_telemetry(tele, 0.0, 100.0)
        assert {(e.kind, e.record.pandaid if e.kind is EventKind.JOB
                 else e.record.row_id) for e in log} == {
            (EventKind.JOB, 1), (EventKind.TRANSFER, 1), (EventKind.TRANSFER, 2),
        }

    def test_job_events_carry_their_file_rows(self, live_harness):
        tele = self._telemetry(live_harness)
        t0, t1 = live_harness.window
        log = EventLog.from_telemetry(tele, t0, t1)
        by_pid = {}
        for f in tele.files:
            by_pid.setdefault(f.pandaid, []).append(f)
        job_events = [e for e in log if e.kind is EventKind.JOB]
        assert job_events
        for ev in job_events:
            assert list(ev.files) == by_pid.get(ev.record.pandaid, [])

    def test_count_batches_partition_the_log(self, live_log):
        batches = list(live_log.micro_batches(batch_events=97))
        assert sum(len(b) for b in batches) == len(live_log)
        assert all(len(b) <= 97 for b in batches)
        assert all(len(b) == 97 for b in batches[:-1])
        flat = [e for b in batches for e in b]
        assert flat == list(live_log)

    def test_time_batches_partition_and_bound_spans(self, live_log):
        span = 2 * 3600.0
        batches = list(live_log.micro_batches(batch_seconds=span))
        assert [e for b in batches for e in b] == list(live_log)
        assert all(b for b in batches)
        # the log is time-ordered, so every batch covers < one span
        for b in batches:
            assert b[-1].time - b[0].time < span

    def test_batching_requires_exactly_one_mode(self, live_log):
        with pytest.raises(ValueError):
            list(live_log.micro_batches())
        with pytest.raises(ValueError):
            list(live_log.micro_batches(batch_seconds=10.0, batch_events=5))
        with pytest.raises(ValueError):
            list(live_log.micro_batches(batch_events=0))
        with pytest.raises(ValueError):
            list(live_log.micro_batches(batch_seconds=0.0))


# -- incremental index freeze -----------------------------------------------------


def _bulk_source(jobs=(), files=(), transfers=()) -> OpenSearchLike:
    source = OpenSearchLike()
    source.jobs.ingest(jobs)
    source.files.ingest(files)
    source.transfers.ingest(transfers)
    source.store.freeze()
    source.warm_interner()
    return source


class TestIncrementalFreeze:
    def test_appends_do_not_trigger_full_rebuilds(self):
        transfers = [make_transfer(row_id=i, start=float(i)) for i in range(20)]
        source = _bulk_source(transfers=transfers[:10])
        # Force the sorted columns to exist, then count rebuilds.
        source.transfers.search(Range("starttime", gte=0.0, lt=100.0))
        before = FieldIndex.full_builds
        for i in range(10, 20):
            source.transfers.append([transfers[i]])
            source.transfers.search(Range("starttime", gte=0.0, lt=100.0))
        assert FieldIndex.full_builds == before

    def test_incremental_range_parity_with_bulk(self):
        rng = random.Random(5)
        starts = [rng.uniform(0.0, 1000.0) for _ in range(200)]
        # duplicates exercise the equal-value doc-id ordering
        starts[50:60] = [starts[0]] * 10
        transfers = [make_transfer(row_id=i, start=s) for i, s in enumerate(starts)]

        bulk = _bulk_source(transfers=transfers)
        inc = _bulk_source(transfers=transfers[:37])
        for i in range(37, 200, 13):
            inc.transfers.append(transfers[i : i + 13])

        for lo, hi in [(0.0, 1000.0), (100.0, 400.0), (starts[0], starts[0] + 1e-9)]:
            q = Range("starttime", gte=lo, lt=hi)
            assert inc.transfers.search(q) == bulk.transfers.search(q)

    def test_non_numeric_flip_still_correct(self):
        idx = FieldIndex("x")
        idx.add(0, 1.5)
        idx.freeze()
        idx.add(1, "oops")  # column flips non-numeric after a freeze
        idx.freeze()
        assert idx.term("oops") == {1}
        with pytest.raises(TypeError):
            idx.range_ids(gte=0.0)

    def test_append_bumps_generation(self):
        source = _bulk_source(transfers=[make_transfer(row_id=1)])
        gen = source.generation
        source.transfers.append([make_transfer(row_id=2)])
        assert source.generation > gen


class TestIngestBatch:
    def _chunks(self, seq, n):
        return [seq[i : i + n] for i in range(0, len(seq), n)]

    def test_matches_bulk_ingest(self, live_harness):
        tele = live_harness.telemetry()
        bulk = OpenSearchLike.from_telemetry(tele)
        inc = OpenSearchLike()
        for jobs, files, transfers in zip(
            self._chunks(tele.jobs, 7) + [[]] * 99,
            self._chunks(tele.files, 19) + [[]] * 99,
            self._chunks(tele.transfers, 23) + [[]] * 99,
        ):
            inc.ingest_batch(jobs=jobs, files=files, transfers=transfers)

        t0, t1 = live_harness.window
        assert inc.user_jobs_completed_in(t0, t1) == bulk.user_jobs_completed_in(t0, t1)
        assert inc.transfers_started_in(t0, t1) == bulk.transfers_started_in(t0, t1)
        assert inc.files_of_jobs(
            [j.pandaid for j in bulk.user_jobs_completed_in(t0, t1)]
        ) == bulk.files_of_jobs([j.pandaid for j in bulk.user_jobs_completed_in(t0, t1)])

    def test_extends_packs_in_place(self):
        source = _bulk_source(transfers=[make_transfer(row_id=1, start=1.0)])
        packs = source.column_packs()
        source.ingest_batch(transfers=[make_transfer(row_id=2, start=2.0)])
        extended = source.column_packs()
        assert len(extended.transfers.starttime) == 2
        # extension happened inside ingest_batch, no lazy rebuild needed
        assert extended is not packs
        np.testing.assert_array_equal(extended.transfers.row_id, [1, 2])

    def test_pack_extension_matches_full_lower(self, live_harness):
        tele = live_harness.telemetry()
        bulk = OpenSearchLike.from_telemetry(tele)
        inc = OpenSearchLike()
        inc.ingest_batch(
            jobs=tele.jobs[:5], files=tele.files[:9], transfers=tele.transfers[:11]
        )
        inc.column_packs()  # lower now, then extend via later batches
        inc.ingest_batch(
            jobs=tele.jobs[5:], files=tele.files[9:], transfers=tele.transfers[11:]
        )
        a, b = inc.column_packs(), bulk.column_packs()
        np.testing.assert_array_equal(a.jobs.pandaid, b.jobs.pandaid)
        np.testing.assert_array_equal(a.transfers.starttime, b.transfers.starttime)
        # string codes are interner-local; compare the decoded values
        assert [inc.interner.decode(c) for c in a.files.lfn] == [
            bulk.interner.decode(c) for c in b.files.lfn
        ]
        assert [inc.interner.decode(c) for c in a.transfers.lfn] == [
            bulk.interner.decode(c) for c in b.transfers.lfn
        ]

    def test_invalidates_artifact_cache(self):
        job = make_job(end=2000.0)
        source = _bulk_source(
            jobs=[job], files=[make_file()], transfers=[make_transfer()]
        )
        cache = ArtifactCache(source)
        plan = WindowPlan(0.0, 10_000.0)
        stale = cache.get(plan)
        source.ingest_batch(jobs=[make_job(pandaid=2, jeditaskid=200, end=2100.0)])
        fresh = cache.get(plan)
        assert fresh is not stale
        assert len(fresh.jobs) == 2
        assert cache.misses == 2


# -- collector window query -------------------------------------------------------


class TestTransfersInWindow:
    def test_parity_with_linear_scan(self, live_harness):
        collector = live_harness.collector
        events = collector.transfer_events
        t0, t1 = live_harness.window
        for lo, hi in [(t0, t1), (t0 + 3600.0, t0 + 7200.0), (t1, t1 + 10.0)]:
            expected = [e for e in events if lo <= e.starttime < hi]
            assert collector.transfers_in_window(lo, hi) == expected

    def test_append_invalidates_sorted_order(self):
        from repro.telemetry.collector import TelemetryCollector

        class _Ev:
            def __init__(self, s):
                self.starttime = s

        collector = TelemetryCollector(catalog=None)
        for s in (5.0, 1.0, 3.0):
            collector.on_transfer(_Ev(s))
        assert [e.starttime for e in collector.transfers_in_window(0.0, 10.0)] == [
            5.0, 1.0, 3.0,
        ]
        collector.on_transfer(_Ev(2.0))
        assert [e.starttime for e in collector.transfers_in_window(0.0, 4.0)] == [
            1.0, 3.0, 2.0,
        ]


# -- streaming vs batch parity ----------------------------------------------------


class TestStreamingParity:
    def test_in_order_replay_is_bit_identical(self, live_harness, live_log, live_batch):
        proc = _stream(
            live_harness, None, live_log.micro_batches(batch_seconds=2 * 3600.0)
        )
        stream = proc.report()
        assert set(stream.results) == {"exact", "rm1", "rm2"}
        for m in stream.results:
            assert stream[m].matched_pairs() == live_batch[m].matched_pairs()
            assert stream[m] == live_batch[m]
        assert stream == live_batch
        assert any(stream[m].matches for m in stream.results)

    def test_single_batch_replay(self, live_harness, live_log, live_batch):
        proc = _stream(live_harness, None, [list(live_log)])
        assert proc.report() == live_batch

    def test_full_study_stream_matches_batch(self, small_study, small_report):
        proc = small_study.stream(batch_seconds=6 * 3600.0)
        assert proc.report() == small_report

    def test_jobs_finalized_exactly_once(self, live_harness, live_log):
        t0, t1 = live_harness.window
        proc = StreamProcessor(t0, t1, known_sites=live_harness.known_site_names())
        deltas = [proc.process(b) for b in live_log.micro_batches(batch_events=150)]
        deltas.append(proc.finish())
        final = proc.results()
        for method in final:
            finalized = [f for d in deltas for f in d.matches[method]]
            seqs = [f.seq for f in finalized]
            assert len(seqs) == len(set(seqs))  # no double finalization
            # union of deltas, replayed in seq order == accumulated state
            assert [
                f.match for f in sorted(finalized, key=lambda f: f.seq)
            ] == final[method].matches
        # watermark is monotone over deltas
        marks = [d.watermark for d in deltas]
        assert marks == sorted(marks)

    def test_metrics_account_every_event(self, live_harness, live_log):
        proc = _stream(live_harness, None, live_log.micro_batches(batch_events=200))
        m = proc.metrics()
        assert m.n_events == len(live_log)
        assert m.n_job_events + m.n_transfer_events == m.n_events
        assert m.n_pending_jobs == 0  # finish() flushed everything
        assert m.watermark == float("inf")
        assert m.n_late_events == 0  # in-order replay is never late
        assert m.total_matched == {
            name: len(r.matches) for name, r in proc.results().items()
        }
        assert m.events_per_sec > 0

    def test_process_after_finish_raises(self, live_harness):
        proc = _stream(live_harness, None, [])
        with pytest.raises(RuntimeError):
            proc.process([])
        with pytest.raises(RuntimeError):
            proc.finish()

    def test_rejects_non_columnar_matcher(self):
        class Weird(BaseMatcher):
            name = "weird"

            def time_ok(self, job, transfer):  # pragma: no cover
                return True

        with pytest.raises(TypeError):
            IncrementalMatcher(0.0, 1.0, matchers=[Weird()])

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch_events=st.integers(min_value=1, max_value=400),
        extra_lateness=st.floats(min_value=0.0, max_value=7200.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_shuffled_replay_is_bit_identical(
        self, live_harness, live_log, live_batch, seed, batch_events, extra_lateness
    ):
        """THE property: any delivery order, any micro-batch size, any
        lateness at least the order's disorder bound → the accumulated
        state equals the batch report, dataclass-``==`` identical."""
        events = list(live_log)
        random.Random(seed).shuffle(events)
        lateness = _disorder_bound(events) + extra_lateness
        proc = _stream(
            live_harness,
            None,
            (events[i : i + batch_events] for i in range(0, len(events), batch_events)),
            lateness=lateness,
        )
        stream = proc.report()
        for m in stream.results:
            assert stream[m].matched_pairs() == live_batch[m].matched_pairs()
        assert stream == live_batch

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_insufficient_lateness_is_observable(
        self, live_harness, live_log, live_batch, seed
    ):
        """With zero lateness under shuffle, divergence is allowed — but
        the violation must show up in the late-event counter, and the
        stream's matches must be a subset of the batch's (closing early
        can only miss transfers, never invent them)."""
        events = list(live_log)
        random.Random(seed).shuffle(events)
        if _disorder_bound(events) == 0.0:  # pathological: still in order
            return
        proc = _stream(
            live_harness,
            None,
            (events[i : i + 100] for i in range(0, len(events), 100)),
            lateness=0.0,
        )
        assert proc.metrics().n_late_events > 0
        stream = proc.report()
        for m in stream.results:
            assert set(stream[m].matched_pairs()) <= set(live_batch[m].matched_pairs())


# -- folds ------------------------------------------------------------------------


class TestFolds:
    @pytest.fixture(scope="class")
    def streamed(self, live_harness, live_log):
        return _stream(
            live_harness, None, live_log.micro_batches(batch_seconds=3 * 3600.0)
        )

    def test_summary_fold_matches_batch_headline(self, streamed, live_batch):
        assert streamed.headline() == headline_stats(live_batch, "exact", frame="row")

    def test_threshold_fold_matches_batch_sweep(self, streamed, live_batch):
        expected = threshold_sweep(
            timings_for_result(live_batch["exact"], frame="row")
        )
        assert streamed.folds["thresholds"].snapshot() == expected

    def test_queuing_fold_matches_batch_tallies(self, streamed, live_batch):
        fold = streamed.folds["queuing"]
        assert fold.jobs_by_class() == live_batch["exact"].jobs_by_class()
        assert fold.local_remote_split() == live_batch["exact"].local_remote_split()

    def test_headline_requires_summary_fold(self, live_harness):
        from repro.stream import FoldSet

        t0, t1 = live_harness.window
        proc = StreamProcessor(t0, t1, folds=FoldSet({}))
        with pytest.raises(KeyError):
            proc.headline()


# -- the live tap -----------------------------------------------------------------


class TestStreamingCollector:
    def test_live_log_streams_to_batch_parity(self, live_harness, live_log, live_batch):
        """The live-collected log, streamed, equals the batch pipeline
        over the same records — and actually matches something."""
        proc = _stream(
            live_harness, None, live_log.micro_batches(batch_events=250)
        )
        assert proc.report() == live_batch
        assert any(len(r.matches) > 0 for r in proc.results().values())

    def test_collector_is_a_droppin_telemetry_collector(self, live_harness):
        collector = live_harness.collector
        assert isinstance(collector, StreamingCollector)
        # the base-class sinks still accumulated ground truth
        assert collector.n_jobs > 0
        assert collector.n_transfers > 0
        # one job event per completed job, one transfer event per
        # (lossless) transfer record
        job_events = [e for e in collector.log if e.kind is EventKind.JOB]
        assert len(job_events) == collector.n_jobs
        transfer_events = [
            e for e in collector.log if e.kind is EventKind.TRANSFER
        ]
        assert len(transfer_events) == collector.n_transfers

    def test_live_events_are_sequenced_in_arrival_order(self, live_log):
        for kind in EventKind:
            seqs = [e.seq for e in live_log if e.kind is kind]
            assert seqs == list(range(len(seqs)))
