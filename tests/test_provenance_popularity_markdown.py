"""Tests for provenance graphs, popularity tracking, markdown reports."""

import math

import numpy as np
import pytest

from repro.core.analysis.provenance import (
    build_provenance_graph,
    failed_feed_fraction,
    feeding_sites,
    site_feed_stats,
    summarize,
)
from repro.core.matching.base import JobMatch
from repro.reporting.markdown import (
    build_markdown_report,
    load_results,
    write_markdown_report,
)
from repro.rucio.did import DID
from repro.rucio.popularity import PopularityTracker

from tests.helpers import make_job, make_transfer


def jm(transfers, **kw) -> JobMatch:
    return JobMatch(job=make_job(**kw), transfers=transfers)


class TestProvenanceGraph:
    def _graph(self):
        matches = [
            jm([make_transfer(row_id=1, src="S1", dst="A", size=100),
                make_transfer(row_id=2, src="S2", dst="A", size=200)],
               pandaid=1, site="A"),
            jm([make_transfer(row_id=3, src="S1", dst="B", size=300)],
               pandaid=2, site="B", status="failed"),
        ]
        return build_provenance_graph(matches)

    def test_structure(self):
        g = self._graph()
        kinds = {d["kind"] for _, d in g.nodes(data=True)}
        assert kinds == {"job", "transfer", "site"}
        assert g.has_edge("site:S1", "xfer:1")
        assert g.has_edge("xfer:1", "job:1")

    def test_feeding_sites(self):
        g = self._graph()
        assert feeding_sites(g, 1) == ["S1", "S2"]
        assert feeding_sites(g, 2) == ["S1"]
        assert feeding_sites(g, 999) == []

    def test_site_feed_stats(self):
        g = self._graph()
        stats = site_feed_stats(g)
        assert stats["S1"] == (2, 400.0)
        assert stats["S2"] == (1, 200.0)

    def test_failed_feed_fraction(self):
        g = self._graph()
        assert failed_feed_fraction(g, "S1") == pytest.approx(0.5)
        assert failed_feed_fraction(g, "S2") == 0.0
        assert failed_feed_fraction(g, "GHOST") == 0.0

    def test_summary(self):
        g = self._graph()
        s = summarize(g)
        assert s.n_jobs == 2 and s.n_transfers == 3 and s.n_source_sites == 2
        assert s.top_source_share == pytest.approx(400 / 600)
        assert s.mean_sources_per_job == pytest.approx(1.5)

    def test_empty(self):
        g = build_provenance_graph([])
        s = summarize(g)
        assert s.n_jobs == 0 and s.top_source_share == 0.0

    def test_on_study(self, small_report):
        g = build_provenance_graph(small_report["rm2"].matched_jobs())
        s = summarize(g)
        assert s.n_jobs == small_report["rm2"].n_matched_jobs
        assert 0.0 < s.top_source_share <= 1.0


class TestPopularityTracker:
    def test_accumulates(self):
        t = PopularityTracker()
        d = DID("s", "ds")
        t.record_access(d, now=0.0)
        t.record_access(d, now=0.0)
        assert t.score(d, now=0.0) == pytest.approx(2.0)
        assert len(t) == 1

    def test_half_life_decay(self):
        t = PopularityTracker(half_life=100.0)
        d = DID("s", "ds")
        t.record_access(d, now=0.0)
        assert t.score(d, now=100.0) == pytest.approx(0.5)
        assert t.score(d, now=200.0) == pytest.approx(0.25)

    def test_unknown_is_zero(self):
        assert PopularityTracker().score(DID("s", "x"), 0.0) == 0.0

    def test_top_ordering(self):
        t = PopularityTracker()
        hot, cold = DID("s", "hot"), DID("s", "cold")
        for _ in range(5):
            t.record_access(hot, now=0.0)
        t.record_access(cold, now=0.0)
        ranked = t.top(now=0.0, n=2)
        assert ranked[0][0] == hot

    def test_recency_beats_stale_volume(self):
        t = PopularityTracker(half_life=10.0)
        stale, fresh = DID("s", "stale"), DID("s", "fresh")
        for _ in range(4):
            t.record_access(stale, now=0.0)
        t.record_access(fresh, now=100.0)
        assert t.score(fresh, 100.0) > t.score(stale, 100.0)

    def test_weighted_pick_prefers_popular(self):
        t = PopularityTracker()
        hot, cold = DID("s", "hot"), DID("s", "cold")
        for _ in range(50):
            t.record_access(hot, now=0.0)
        t.record_access(cold, now=0.0)
        rng = np.random.default_rng(0)
        picks = [t.pick_weighted(0.0, rng) for _ in range(200)]
        assert picks.count(hot) > picks.count(cold) * 5

    def test_pick_fallback(self):
        t = PopularityTracker()
        rng = np.random.default_rng(0)
        assert t.pick_weighted(0.0, rng) is None
        fallback = [DID("s", "a"), DID("s", "b")]
        assert t.pick_weighted(0.0, rng, fallback=fallback) in fallback

    def test_bad_half_life(self):
        with pytest.raises(ValueError):
            PopularityTracker(half_life=0.0)


class TestMarkdownReport:
    def _write_artifact(self, directory, name, **extra):
        import json
        payload = {"experiment": name, "paper": {"x": 1},
                   "measured": {"x": 2, "nested": {"a": [1, 2]}}, **extra}
        (directory / f"{name}.json").write_text(json.dumps(payload))

    def test_load_results(self, tmp_path):
        self._write_artifact(tmp_path, "fig9_thresholds")
        results = load_results(tmp_path)
        assert "fig9_thresholds" in results

    def test_load_skips_garbage(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        assert load_results(tmp_path) == {}

    def test_missing_dir(self, tmp_path):
        assert load_results(tmp_path / "nope") == {}

    def test_render_order_and_content(self, tmp_path):
        self._write_artifact(tmp_path, "table1_activity")
        self._write_artifact(tmp_path, "summary_headline", notes="hello")
        md = build_markdown_report(tmp_path)
        assert md.index("## summary_headline") < md.index("## table1_activity")
        assert "*hello*" in md
        assert "**Measured:**" in md

    def test_unknown_experiments_appended(self, tmp_path):
        self._write_artifact(tmp_path, "zz_custom")
        md = build_markdown_report(tmp_path)
        assert "## zz_custom" in md

    def test_write_report(self, tmp_path):
        self._write_artifact(tmp_path, "fig2_growth")
        out = tmp_path / "report.md"
        assert write_markdown_report(tmp_path, out) == 1
        assert out.read_text().startswith("# Experiment results")

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main
        self._write_artifact(tmp_path, "fig2_growth")
        out = tmp_path / "r.md"
        assert main(["report", "--results", str(tmp_path), "--out", str(out)]) == 0
        assert out.exists()

    def test_cli_report_empty_fails(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "r.md"
        assert main(["report", "--results", str(tmp_path / "none"),
                     "--out", str(out)]) == 1
