"""Tests for repro.units."""

import pytest

from repro import units


class TestBytesToHuman:
    def test_bytes(self):
        assert units.bytes_to_human(512) == "512 B"

    def test_kilobytes(self):
        assert units.bytes_to_human(1500) == "1.50 KB"

    def test_terabytes(self):
        assert units.bytes_to_human(1.5e12) == "1.50 TB"

    def test_petabytes(self):
        assert units.bytes_to_human(957.98e15) == "957.98 PB"

    def test_exabyte_threshold(self):
        assert units.bytes_to_human(1e18) == "1.00 EB"

    def test_negative(self):
        assert units.bytes_to_human(-2e9) == "-2.00 GB"

    def test_zero(self):
        assert units.bytes_to_human(0) == "0 B"


class TestRates:
    def test_rate_to_mbps(self):
        assert units.rate_to_mbps(10e6) == pytest.approx(10.0)

    def test_mbps_round_trip(self):
        assert units.rate_to_mbps(units.mbps(130.0)) == pytest.approx(130.0)


class TestSecondsToHuman:
    def test_seconds_only(self):
        assert units.seconds_to_human(42) == "42s"

    def test_minutes(self):
        assert units.seconds_to_human(90) == "00:01:30"

    def test_days(self):
        assert units.seconds_to_human(93784) == "1d 02:03:04"

    def test_negative(self):
        assert units.seconds_to_human(-90) == "-00:01:30"


class TestRatioPct:
    def test_simple(self):
        assert units.ratio_pct(1, 4) == 25.0

    def test_zero_whole(self):
        assert units.ratio_pct(5, 0) == 0.0

    def test_paper_headline(self):
        # 30,380 of 1,585,229 transfers = 1.92%
        assert units.ratio_pct(30380, 1585229) == pytest.approx(1.9164, abs=1e-3)


class TestConstants:
    def test_decimal_prefixes(self):
        assert units.PB == 1000 * units.TB
        assert units.EB == 1000 * units.PB

    def test_time_constants(self):
        assert units.DAY == 24 * units.HOUR
        assert units.WEEK == 7 * units.DAY
