"""Tests for repro.ids and repro.rng."""

import numpy as np
import pytest

from repro.ids import IdFactory, Sequence, PANDAID_BASE
from repro.rng import RngRegistry, bounded, lognormal_with_mean


class TestSequence:
    def test_monotone(self):
        s = Sequence(5)
        assert [s.next() for _ in range(3)] == [5, 6, 7]

    def test_reset(self):
        s = Sequence(10)
        s.next()
        s.reset()
        assert s.next() == 10


class TestIdFactory:
    def test_pandaid_base(self):
        f = IdFactory()
        assert f.next_pandaid() == PANDAID_BASE

    def test_independent_sequences(self):
        f = IdFactory()
        a = f.next_pandaid()
        b = f.next_jeditaskid()
        assert a != b
        assert f.next_pandaid() == a + 1

    def test_two_factories_identical(self):
        a, b = IdFactory(), IdFactory()
        assert [a.next_transferid() for _ in range(5)] == [
            b.next_transferid() for _ in range(5)
        ]

    def test_lfn_format(self):
        f = IdFactory()
        lfn = f.make_lfn("user.alice")
        assert lfn.startswith("user.alice.")
        assert lfn.endswith(".root")

    def test_lfns_unique(self):
        f = IdFactory()
        lfns = {f.make_lfn("s") for _ in range(100)}
        assert len(lfns) == 100

    def test_dataset_name_contains_taskid(self):
        f = IdFactory()
        assert "43001234" in f.make_dataset_name("mc", 43001234)


class TestRngRegistry:
    def test_same_name_same_stream(self):
        r = RngRegistry(1)
        assert r.get("a") is r.get("a")

    def test_different_names_different_draws(self):
        r = RngRegistry(1)
        assert r.get("a").random() != r.get("b").random()

    def test_reproducible_across_registries(self):
        x = RngRegistry(9).get("net").random(5)
        y = RngRegistry(9).get("net").random(5)
        assert np.allclose(x, y)

    def test_order_independent(self):
        r1 = RngRegistry(3)
        r1.get("first")
        a = r1.get("probe").random()
        r2 = RngRegistry(3)
        b = r2.get("probe").random()
        assert a == b

    def test_seed_changes_stream(self):
        a = RngRegistry(1).get("x").random()
        b = RngRegistry(2).get("x").random()
        assert a != b


class TestLognormalWithMean:
    def test_mean_hit(self):
        rng = np.random.default_rng(0)
        xs = lognormal_with_mean(rng, 100.0, 0.5, size=200_000)
        assert np.mean(xs) == pytest.approx(100.0, rel=0.02)

    def test_positive(self):
        rng = np.random.default_rng(0)
        assert np.all(lognormal_with_mean(rng, 5.0, 2.0, size=1000) > 0)

    def test_rejects_nonpositive_mean(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            lognormal_with_mean(rng, 0.0, 1.0)


class TestBounded:
    def test_inside(self):
        assert bounded(5, 0, 10) == 5

    def test_clamps(self):
        assert bounded(-1, 0, 10) == 0
        assert bounded(99, 0, 10) == 10
