"""Tests for the replica registry."""

import pytest

from repro.grid.presets import build_mini
from repro.rucio.did import DID
from repro.rucio.replica import ReplicaRegistry, ReplicaState


@pytest.fixture()
def reg():
    return ReplicaRegistry(build_mini(seed=1))


FD = DID("s", "file1")


class TestAddRemove:
    def test_add_and_get(self, reg):
        rep = reg.add(FD, "CERN-PROD_DATADISK", 100)
        assert reg.get(FD, "CERN-PROD_DATADISK") is rep
        assert rep.state is ReplicaState.AVAILABLE

    def test_add_updates_rse_usage(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100)
        assert reg.topology.rse("CERN-PROD_DATADISK").used_bytes == 100

    def test_duplicate_replica_rejected(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100)
        with pytest.raises(ValueError):
            reg.add(FD, "CERN-PROD_DATADISK", 100)

    def test_unknown_rse_rejected(self, reg):
        with pytest.raises(KeyError):
            reg.add(FD, "NOPE_DATADISK", 100)

    def test_remove_releases_capacity(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100)
        reg.remove(FD, "CERN-PROD_DATADISK")
        assert reg.topology.rse("CERN-PROD_DATADISK").used_bytes == 0
        assert reg.replicas_of(FD) == []

    def test_remove_missing_raises(self, reg):
        with pytest.raises(KeyError):
            reg.remove(FD, "CERN-PROD_DATADISK")

    def test_same_file_multiple_rses(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100)
        reg.add(FD, "BNL-ATLAS_DATADISK", 100)
        assert len(reg.replicas_of(FD)) == 2
        assert reg.n_replicas() == 2


class TestStates:
    def test_copying_not_available(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100, state=ReplicaState.COPYING)
        assert reg.available_replicas_of(FD) == []
        assert not reg.has_available_at_site(FD, "CERN-PROD")

    def test_mark_available(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100, state=ReplicaState.COPYING)
        reg.mark_available(FD, "CERN-PROD_DATADISK")
        assert reg.has_available_at_site(FD, "CERN-PROD")

    def test_mark_available_missing_raises(self, reg):
        with pytest.raises(KeyError):
            reg.mark_available(FD, "CERN-PROD_DATADISK")


class TestSiteQueries:
    def test_sites_with_file(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 100)
        reg.add(FD, "CERN-PROD_SCRATCHDISK", 100)
        reg.add(FD, "BNL-ATLAS_DATADISK", 100)
        assert reg.sites_with_file(FD) == {"CERN-PROD", "BNL-ATLAS"}

    def test_dataset_complete_at_site(self, reg):
        f1, f2 = DID("s", "a"), DID("s", "b")
        reg.add(f1, "CERN-PROD_DATADISK", 1)
        reg.add(f2, "CERN-PROD_DATADISK", 1)
        assert reg.dataset_complete_at_site([f1, f2], "CERN-PROD")
        assert not reg.dataset_complete_at_site([f1, f2], "BNL-ATLAS")

    def test_missing_at_site(self, reg):
        f1, f2 = DID("s", "a"), DID("s", "b")
        reg.add(f1, "CERN-PROD_DATADISK", 1)
        assert reg.missing_at_site([f1, f2], "CERN-PROD") == [f2]

    def test_files_at_rse(self, reg):
        reg.add(FD, "CERN-PROD_DATADISK", 1)
        assert reg.files_at_rse("CERN-PROD_DATADISK") == {FD}
        assert reg.files_at_rse("BNL-ATLAS_DATADISK") == set()
