"""Package-integrity checks: every subpackage imports, every __all__
entry resolves, and every public module carries a docstring."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    m.name
    for m in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ runs the CLI (and exits) on import, by design
    if m.name != "repro.__main__"
)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring")


def test_top_level_exports():
    assert repro.__version__
    from repro import EightDayConfig, EightDayStudy, HarnessConfig, SimulationHarness
    assert all(x is not None for x in
               (EightDayConfig, EightDayStudy, HarnessConfig, SimulationHarness))
