"""Tests for the zero-copy pack-archive layer and executor seeding.

Lifecycle is the load-bearing part: archives must attach to exactly the
data that was exported, be refcounted per pool key, disappear from disk
when the last holder releases (pool close, generation bump), and the
whole path must degrade to pickling — with bit-identical reports —
whenever spooling is impossible or disabled.  Plus the source-identity
regression: pool keys must never be built on recyclable ``id()``.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.columnar import shm
from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    source_token,
)
from repro.exec.plan import WindowPlan
from repro.metastore.opensearch import OpenSearchLike
from repro.metastore.packsource import PackSource

from tests.helpers import make_file, make_job, make_transfer, matching_triple

KNOWN_SITES = {"SITE-A", "SITE-B"}


def _records():
    job, files, transfers = matching_triple(n_files=3)
    job2 = make_job(pandaid=2, jeditaskid=101, site="SITE-B", end=5000.0,
                    nin=1000)
    files = files + [make_file(pandaid=2, jeditaskid=101, lfn="g1", size=1000)]
    transfers = transfers + [
        make_transfer(row_id=9, lfn="g1", size=1000, src="SITE-B", dst="SITE-B",
                      start=4100.0, end=4200.0, jeditaskid=101)
    ]
    return [job, job2], files, transfers


def _source() -> OpenSearchLike:
    jobs, files, transfers = _records()
    src = OpenSearchLike()
    src.ingest_batch(jobs=jobs, files=files, transfers=transfers)
    return src


def _pack_source() -> PackSource:
    return PackSource.from_records(*_records())


PLAN = WindowPlan(0.0, 10_000.0)


# -- export / attach --------------------------------------------------------------


class TestArchiveRoundTrip:
    def test_attach_reproduces_the_window(self):
        src = _pack_source()
        archive = shm.PackArchive.export(src)
        try:
            attached = archive.attach()
            a_jobs, a_files, a_transfers, _ = attached.materialize_window(
                0.0, 10_000.0
            )
            jobs, files, transfers, _ = src.materialize_window(0.0, 10_000.0)
            assert list(a_jobs) == list(jobs)
            assert list(a_files) == list(files)
            assert list(a_transfers) == list(transfers)
            assert attached.generation == src.generation
            assert attached.shard_seconds == src.shard_seconds
        finally:
            archive.unlink()

    def test_attached_arrays_are_readonly_memmaps(self):
        src = _pack_source()
        archive = shm.PackArchive.export(src)
        try:
            attached = archive.attach()
            col = attached.columns.jobs.endtime
            assert isinstance(col, np.memmap)
            assert not col.flags.writeable
        finally:
            archive.unlink()

    def test_export_wraps_record_sources(self):
        # An OpenSearchLike is not a PackSource; export lowers a sidecar
        # from its record collections and the attach is still faithful.
        src = _source()
        archive = shm.PackArchive.export(src)
        try:
            attached = archive.attach()
            jobs, files, transfers, _ = src.materialize_window(0.0, 10_000.0)
            a_jobs, a_files, a_transfers, _ = attached.materialize_window(
                0.0, 10_000.0
            )
            assert list(a_jobs) == list(jobs)
            assert list(a_files) == list(files)
            assert list(a_transfers) == list(transfers)
        finally:
            archive.unlink()

    def test_export_without_columnar_surface_raises(self):
        with pytest.raises(shm.ExportError):
            shm.PackArchive.export(object())

    def test_unlink_removes_spool_directory(self):
        archive = shm.PackArchive.export(_pack_source())
        assert archive.exists()
        archive.unlink()
        assert not archive.exists()
        assert not archive.path.exists()


# -- refcounted registry ----------------------------------------------------------


class TestArchiveRegistry:
    def test_acquire_is_shared_and_release_unlinks_last(self):
        src = _pack_source()
        key = ("source", ("tok", -1), src.generation, "columnar")
        a1 = shm.acquire(src, key)
        a2 = shm.acquire(src, key)
        assert a1 is a2
        assert key in shm.active_archives()
        shm.release(key)
        assert a1.exists()  # one holder left
        shm.release(key)
        assert not a1.exists()
        assert key not in shm.active_archives()

    def test_release_of_unknown_key_is_a_noop(self):
        shm.release(("source", ("tok", -2), 0, "columnar"))


# -- executor integration ---------------------------------------------------------


class TestExecutorSeeding:
    def test_shm_path_matches_serial_bit_for_bit(self):
        src = _source()
        serial = SerialExecutor(engine="columnar").execute(
            src, [PLAN], known_sites=KNOWN_SITES
        )[0]
        with ParallelExecutor(workers=2, engine="columnar") as ex:
            parallel = ex.execute(src, [PLAN], known_sites=KNOWN_SITES)[0]
            assert ex.seed_mode == "shm"
            assert len(shm.active_archives()) == 1
        for m in serial.methods:
            assert parallel[m].matched_pairs() == serial[m].matched_pairs()
        assert parallel == serial

    def test_close_releases_the_archive(self):
        src = _source()
        ex = ParallelExecutor(workers=2, engine="columnar")
        ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
        (archive,) = shm.active_archives().values()
        ex.close()
        assert not shm.active_archives()
        assert not archive.exists()

    def test_generation_bump_rotates_pool_and_archive(self):
        src = _source()
        with ParallelExecutor(workers=2, engine="columnar") as ex:
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            (old,) = shm.active_archives().values()
            assert ex.pool_inits == 1
            src.ingest_batch(jobs=[make_job(pandaid=77, jeditaskid=300,
                                            end=8000.0)])
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            (new,) = shm.active_archives().values()
            assert ex.pool_inits == 2
            assert new is not old
            assert not old.exists()
            assert new.exists()
        assert not shm.active_archives()

    def test_pool_reuse_exports_once(self):
        src = _source()
        with ParallelExecutor(workers=2, engine="columnar") as ex:
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            assert ex.pool_inits == 1
            assert len(shm.active_archives()) == 1

    def test_pickle_fallback_is_identical(self):
        src = _source()
        with ParallelExecutor(workers=2, engine="columnar",
                              shared_memory=False) as ex:
            report = ex.execute(src, [PLAN], known_sites=KNOWN_SITES)[0]
            assert ex.seed_mode == "pickle"
            assert not shm.active_archives()
        serial = SerialExecutor(engine="columnar").execute(
            src, [PLAN], known_sites=KNOWN_SITES
        )[0]
        assert report == serial

    def test_row_engine_defaults_to_pickle(self):
        src = _source()
        with ParallelExecutor(workers=2, engine="row") as ex:
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            assert ex.seed_mode == "pickle"
            assert not shm.active_archives()


# -- source identity --------------------------------------------------------------


class TestSourceToken:
    def test_token_is_stable_for_a_live_object(self):
        src = _source()
        assert source_token(src) == source_token(src)

    def test_tokens_are_never_reused_after_gc(self):
        # The id() regression: a new source allocated right after the
        # old one dies frequently reuses its address, which made
        # id()-based pool keys serve stale worker caches.  Tokens are
        # monotone — the dead source's token can never come back.
        src = _source()
        old_token = source_token(src)
        del src
        gc.collect()
        fresh = _source()
        assert source_token(fresh) != old_token

    def test_distinct_live_sources_get_distinct_tokens(self):
        a, b = _source(), _source()
        assert source_token(a) != source_token(b)

    def test_unweakrefable_objects_fall_back_to_id(self):
        tok = source_token((1, 2, 3))
        assert tok[0] == "id"

    def test_pool_key_uses_token_not_raw_id(self):
        src = _source()
        ex = ParallelExecutor(workers=2, engine="columnar")
        key = ex._source_key(src, "columnar")
        assert key[1] == source_token(src)
        assert key[1][0] == "tok"
        assert id(src) not in key


# -- concurrent lifecycle ----------------------------------------------------------


class TestConcurrentLifecycle:
    """The serving layer drives one executor from several threads."""

    def test_close_is_idempotent_and_thread_safe(self):
        from concurrent.futures import ThreadPoolExecutor

        src = _source()
        ex = ParallelExecutor(workers=2, engine="columnar")
        ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
        with ThreadPoolExecutor(4) as pool:
            for f in [pool.submit(ex.close) for _ in range(8)]:
                f.result()
        assert not shm.active_archives()
        ex.close()  # and once more, after the pool is gone
        assert ex._pool is None

    def test_concurrent_executes_share_one_pool(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        src = _source()
        barrier = threading.Barrier(4)

        def run(_):
            barrier.wait()
            return ex.execute(src, [PLAN], known_sites=KNOWN_SITES)[0]

        with ParallelExecutor(workers=2, engine="columnar") as ex:
            with ThreadPoolExecutor(4) as pool:
                reports = [f.result() for f in
                           [pool.submit(run, i) for i in range(4)]]
            assert ex.pool_inits == 1  # one init round, shared by all
            assert len(shm.active_archives()) == 1
        assert all(r == reports[0] for r in reports)
        assert not shm.active_archives()

    def test_racing_generation_bump_rotates_once(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        src = _source()
        with ParallelExecutor(workers=2, engine="columnar") as ex:
            ex.execute(src, [PLAN], known_sites=KNOWN_SITES)
            (old,) = shm.active_archives().values()
            src.ingest_batch(jobs=[make_job(pandaid=88, jeditaskid=301,
                                            end=8000.0)])
            barrier = threading.Barrier(2)

            def bump(_):
                barrier.wait()
                return ex.execute(src, [PLAN], known_sites=KNOWN_SITES)[0]

            with ThreadPoolExecutor(2) as pool:
                r1, r2 = [f.result() for f in
                          [pool.submit(bump, i) for i in range(2)]]
            assert r1 == r2
            assert ex.pool_inits == 2  # the rotation happened exactly once
            (new,) = shm.active_archives().values()
            assert new is not old
            assert not old.exists()  # old generation's refcount hit zero
            assert new.exists()
        assert not shm.active_archives()

    def test_racing_acquires_export_once_and_refcount(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        src = _pack_source()
        key = ("source", ("tok", -9), src.generation, "columnar")
        barrier = threading.Barrier(4)

        def grab(_):
            barrier.wait()
            return shm.acquire(src, key)

        with ThreadPoolExecutor(4) as pool:
            archives = [f.result() for f in
                        [pool.submit(grab, i) for i in range(4)]]
        first = archives[0]
        assert all(a is first for a in archives)  # one export, shared
        for _ in range(3):
            shm.release(key)
            assert first.exists()  # holders remain
        shm.release(key)
        assert not first.exists()
        assert key not in shm.active_archives()
