"""Tests for scenarios (runtime, growth, ablation) and reporting."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.analysis.bandwidth import bandwidth_series
from repro.core.analysis.summary import (
    activity_breakdown,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.analysis.timeline import build_timeline
from repro.reporting.export import load_json, rows_to_csv, to_json_file
from repro.reporting.figures import render_series, render_timeline, series_to_rows, sparkline
from repro.reporting.tables import render_activity_table, render_method_tables, render_table
from repro.scenarios.growth import GrowthConfig, GrowthModel
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.units import EB, PB
from repro.workload.generator import WorkloadConfig

from tests.helpers import make_transfer


class TestHarness:
    def test_run_once_only(self, tiny_harness):
        tiny_harness.run()
        with pytest.raises(RuntimeError):
            tiny_harness.run()

    def test_telemetry_requires_run(self):
        h = SimulationHarness(HarnessConfig(
            seed=1, workload=WorkloadConfig(duration=3600.0)))
        with pytest.raises(RuntimeError):
            h.telemetry()

    def test_telemetry_cached(self, tiny_harness):
        tiny_harness.run()
        assert tiny_harness.telemetry() is tiny_harness.telemetry()

    def test_determinism(self):
        def run(seed):
            from repro.grid.presets import build_mini
            h = SimulationHarness(
                HarnessConfig(seed=seed, workload=WorkloadConfig(
                    duration=6 * 3600.0, analysis_tasks_per_hour=3.0,
                    production_tasks_per_hour=0.5,
                    background_transfers_per_hour=20.0), drain=6 * 3600.0),
                topology=build_mini(seed=seed))
            h.run()
            return (
                h.collector.n_jobs,
                h.collector.n_transfers,
                [j.pandaid for j in h.collector.completed_jobs[:20]],
                [round(e.endtime, 6) for e in h.collector.transfer_events[:20]],
            )

        assert run(7) == run(7)

    def test_seed_changes_outcome(self):
        from repro.grid.presets import build_mini

        def run(seed):
            h = SimulationHarness(
                HarnessConfig(seed=seed, workload=WorkloadConfig(
                    duration=6 * 3600.0, analysis_tasks_per_hour=3.0)),
                topology=build_mini(seed=seed))
            h.run()
            return (h.collector.n_jobs, h.collector.n_transfers)

        assert run(1) != run(2)

    def test_known_site_names_excludes_unknown(self, tiny_harness):
        names = tiny_harness.known_site_names()
        assert "UNKNOWN" not in names
        assert "CERN-PROD" in names


class TestGrowthModel:
    def test_fig2_shape(self):
        """Fig 2: ~1 EB by 2024, more than doubled since 2018."""
        m = GrowthModel()
        c = m.cumulative_by_year()
        assert 0.5 * EB < c[2024] < 2.0 * EB
        assert m.doubling_ratio(2018, 2024) > 2.0

    def test_monotone_cumulative(self):
        pts = GrowthModel().series()
        values = [p.cumulative for p in pts]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_shutdown_years_depressed(self):
        pts = {p.year: p for p in GrowthModel(GrowthConfig(jitter=0.0)).series()}
        assert pts[2013].ingested < pts[2012].ingested

    def test_deterministic_in_seed(self):
        a = GrowthModel(GrowthConfig(seed=3)).series()
        b = GrowthModel(GrowthConfig(seed=3)).series()
        assert [p.cumulative for p in a] == [p.cumulative for p in b]

    def test_retirement_tracks_archive(self):
        pts = GrowthModel().series()
        assert pts[0].retired == 0.0
        assert pts[-1].retired > 0.0


class TestRenderTables:
    def test_render_table_alignment(self):
        out = render_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "-" in lines[1]

    def test_activity_table(self, small_report, small_telemetry):
        rows = activity_breakdown(small_report["exact"], small_telemetry.transfers)
        out = render_activity_table(rows)
        assert "Analysis Download" in out and "Total" in out

    def test_method_tables(self, small_report):
        out = render_method_tables(
            method_comparison_transfers(small_report),
            method_comparison_jobs(small_report),
            small_report.n_transfers_with_taskid,
            small_report.n_jobs,
        )
        assert "(a) Matched transfers count" in out
        assert "(b) Matched job count" in out
        assert "exact" in out and "rm2" in out


class TestRenderFigures:
    def test_sparkline_shape(self):
        s = sparkline([0, 1, 2, 3, 4], width=60)
        assert len(s) == 5
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_pools_long_series(self):
        s = sparkline(list(range(1000)), width=50)
        assert len(s) == 50

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert set(sparkline([0, 0, 0])) == {"▁"}

    def test_series_rows(self):
        s = bandwidth_series([make_transfer(size=1000, start=0.0, end=10.0)],
                             0.0, 10.0, 5.0, label="x")
        rows = series_to_rows(s)
        assert len(rows) == 2 and set(rows[0]) == {"t", "mbps"}

    def test_render_series_contains_stats(self):
        s = bandwidth_series([make_transfer(size=10**7, start=0.0, end=10.0)],
                             0.0, 10.0, 5.0, label="A->B")
        out = render_series(s)
        assert "A->B" in out and "peak" in out

    def test_render_timeline(self, small_report):
        for m in small_report["exact"].matched_jobs():
            tl = build_timeline(m)
            if tl is not None:
                out = render_timeline(tl)
                assert f"job {tl.pandaid}" in out
                # the phase axis is rendered (queue may round to zero
                # columns for wall-dominated jobs)
                assert "W" in out or "Q" in out
                assert "=" in out
                break


class TestExport:
    def test_csv_roundtrip(self, tmp_path: Path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        p = tmp_path / "out.csv"
        assert rows_to_csv(p, rows) == 2
        text = p.read_text()
        assert text.startswith("a,b")

    def test_csv_dataclasses(self, tmp_path, small_report, small_telemetry):
        rows = activity_breakdown(small_report["exact"], small_telemetry.transfers)
        p = tmp_path / "t1.csv"
        assert rows_to_csv(p, rows) == len(rows)

    def test_csv_empty(self, tmp_path):
        p = tmp_path / "empty.csv"
        assert rows_to_csv(p, []) == 0
        assert p.read_text() == ""

    def test_json_numpy_and_enum(self, tmp_path):
        from repro.core.matching.base import TransferClass
        p = tmp_path / "x.json"
        to_json_file(p, {
            "arr": np.arange(3),
            "scalar": np.float64(1.5),
            "enum": TransferClass.ALL_LOCAL,
        })
        data = load_json(p)
        assert data == {"arr": [0, 1, 2], "scalar": 1.5, "enum": "all_local"}
