"""Integration tests: pipeline + evaluation over the small campaign.

These assert the paper's *shape* findings hold on simulated telemetry:
method ordering, activity ordering, locality dominance, and the
evaluation's precision guarantees.
"""

import pytest

from repro.core.matching.evaluation import evaluate_against_truth, visible_true_pairs
from repro.core.matching.pipeline import MatchingPipeline
from repro.core.analysis.summary import activity_breakdown


@pytest.fixture(scope="module")
def jobs_transfers(small_study):
    t0, t1 = small_study.harness.window
    return (
        small_study.source.user_jobs_completed_in(t0, t1),
        small_study.source.transfers_started_in(t0, t1),
    )


class TestPipelineStructure:
    def test_three_methods_present(self, small_report):
        assert small_report.methods == ["exact", "rm1", "rm2"]

    def test_preselection_counts(self, small_report, small_telemetry):
        assert small_report.n_transfers <= len(small_telemetry.transfers)
        assert small_report.n_transfers_with_taskid <= small_report.n_transfers

    def test_only_user_jobs_considered(self, small_study, small_report):
        t0, t1 = small_study.harness.window
        user_jobs = small_study.source.user_jobs_completed_in(t0, t1)
        assert small_report.n_jobs == len(user_jobs)

    def test_some_matches_found(self, small_report):
        assert small_report["exact"].n_matched_jobs > 0
        assert small_report["exact"].n_matched_transfers > 0


class TestPaperShapes:
    def test_method_ordering_jobs(self, small_report):
        """Table 2b: exact <= RM1 <= RM2 in matched jobs."""
        e = small_report["exact"].n_matched_jobs
        r1 = small_report["rm1"].n_matched_jobs
        r2 = small_report["rm2"].n_matched_jobs
        assert e <= r1 <= r2

    def test_method_ordering_transfers(self, small_report):
        e = small_report["exact"].n_matched_transfers
        r1 = small_report["rm1"].n_matched_transfers
        r2 = small_report["rm2"].n_matched_transfers
        assert e <= r1 <= r2

    def test_transfer_sets_nest(self, small_report):
        assert (small_report["exact"].matched_transfer_ids()
                <= small_report["rm1"].matched_transfer_ids()
                <= small_report["rm2"].matched_transfer_ids())

    def test_exact_mostly_local(self, small_report):
        """Table 2a: the exact method's matches are dominated by local
        transfers (94% in the paper)."""
        local, remote = small_report["exact"].local_remote_split()
        assert local > remote

    def test_rm2_gain_is_remote(self, small_report):
        """Table 2a: RM2's additional matches land in the remote column
        (UNKNOWN endpoints count as non-local)."""
        _, rm1_remote = small_report["rm1"].local_remote_split()
        rm1_local, _ = small_report["rm1"].local_remote_split()
        rm2_local, rm2_remote = small_report["rm2"].local_remote_split()
        assert rm2_remote > rm1_remote
        assert rm2_local == rm1_local

    def test_match_rates_are_low(self, small_report):
        """§5.1: only a few percent of anything matches."""
        pct_jobs = small_report["exact"].n_matched_jobs / small_report.n_jobs
        assert pct_jobs < 0.15

    def test_activity_ordering(self, small_report, small_telemetry):
        """Table 1: Upload >> Download > Direct IO > Production = 0."""
        rows = {r.activity: r for r in activity_breakdown(
            small_report["exact"], small_telemetry.transfers)}
        assert rows["Production Upload"].matched == 0
        assert rows["Production Download"].matched == 0
        au = rows["Analysis Upload"]
        ad = rows["Analysis Download"]
        addio = rows["Analysis Download Direct IO"]
        if au.total:
            assert au.pct > ad.pct > addio.pct

    def test_production_never_matches(self, small_report, small_telemetry):
        matched = small_report["rm2"].matched_transfer_ids()
        prod_rows = [t for t in small_telemetry.transfers
                     if t.activity.startswith("Production")]
        assert all(t.row_id not in matched for t in prod_rows)


class TestEvaluation:
    def test_exact_has_perfect_precision(self, small_report, small_telemetry,
                                         jobs_transfers):
        """With per-job file chunks the exact join is unambiguous, so
        every asserted pair must be truly linked."""
        jobs, transfers = jobs_transfers
        ev = evaluate_against_truth(
            small_report["exact"], small_telemetry.ground_truth, jobs, transfers)
        assert ev.pair_precision == 1.0

    def test_recall_increases_with_relaxation(self, small_report, small_telemetry,
                                              jobs_transfers):
        jobs, transfers = jobs_transfers
        evals = {
            m: evaluate_against_truth(
                small_report[m], small_telemetry.ground_truth, jobs, transfers)
            for m in small_report.methods
        }
        assert evals["exact"].pair_recall <= evals["rm1"].pair_recall <= evals["rm2"].pair_recall

    def test_visible_truth_is_bounded(self, small_telemetry, jobs_transfers):
        jobs, transfers = jobs_transfers
        pairs = visible_true_pairs(small_telemetry.ground_truth, jobs, transfers)
        job_ids = {j.pandaid for j in jobs}
        row_ids = {t.row_id for t in transfers}
        assert all(p in job_ids and r in row_ids for p, r in pairs)

    def test_recall_below_one(self, small_report, small_telemetry, jobs_transfers):
        """Degradation makes full recall impossible — the paper's whole
        problem statement."""
        jobs, transfers = jobs_transfers
        ev = evaluate_against_truth(
            small_report["rm2"], small_telemetry.ground_truth, jobs, transfers)
        assert ev.pair_recall < 1.0

    def test_evaluation_str(self, small_report, small_telemetry, jobs_transfers):
        jobs, transfers = jobs_transfers
        ev = evaluate_against_truth(
            small_report["exact"], small_telemetry.ground_truth, jobs, transfers)
        assert "exact" in str(ev) and "P=" in str(ev)


class TestWindowing:
    def test_narrow_window_reduces_population(self, small_study):
        t0, t1 = small_study.harness.window
        pipeline = MatchingPipeline(
            small_study.source, known_sites=small_study.harness.known_site_names())
        narrow = pipeline.run(t0, t0 + (t1 - t0) / 4)
        full = small_study.matching_report()
        assert narrow.n_jobs <= full.n_jobs
        assert narrow.n_transfers <= full.n_transfers

    def test_empty_window(self, small_study):
        pipeline = MatchingPipeline(small_study.source)
        rep = pipeline.run(-100.0, -1.0)
        assert rep.n_jobs == 0
        assert rep["exact"].n_matched_jobs == 0
