"""Tests for the observability layer (``repro.obs``) and its exporters.

Covers the tracer (nesting, deterministic clock, decorator form), the
metrics registry (labels, histogram bucketing), the ambient context
(scoped install/restore, noop fast path), the Chrome-trace / flat-JSON
exporters, and the load-bearing integration property: running the
matching pipeline under an enabled bundle records spans for every
dataplane stage **without changing any result**.
"""

from __future__ import annotations

import json

import pytest

from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.opensearch import OpenSearchLike
from repro.obs import (
    LATENCY_BUCKETS,
    NOOP_INSTRUMENT,
    NOOP_SPAN,
    Histogram,
    MetricsRegistry,
    Obs,
    TickClock,
    Tracer,
    get_obs,
    instrument_kernel,
    set_obs,
    use_obs,
)
from repro.reporting import (
    chrome_trace,
    metrics_snapshot,
    render_stage_summary,
    stage_summary,
    write_chrome_trace,
    write_metrics_json,
)


# -- tracer -----------------------------------------------------------------------


class TestTracer:
    def test_span_records_interval_and_attrs(self):
        tr = Tracer(clock=TickClock())
        with tr.span("op", cat="kernel") as sp:
            sp.set("rows", 7)
        assert len(tr) == 1
        s = tr.spans[0]
        assert (s.name, s.cat) == ("op", "kernel")
        assert (s.start, s.end, s.duration) == (0.0, 1.0, 1.0)
        assert s.attrs == {"rows": 7}

    def test_nesting_assigns_parent_and_depth(self):
        tr = Tracer(clock=TickClock())
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert tr.active_depth == 2
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.parent_id is None
        # finished spans land in completion order: inner first
        assert [s.name for s in tr.spans] == ["inner", "outer"]
        assert tr.active_depth == 0

    def test_sibling_spans_share_parent(self):
        tr = Tracer(clock=TickClock())
        with tr.span("root") as root:
            with tr.span("a") as a:
                pass
            with tr.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_exception_unwinds_stack(self):
        tr = Tracer(clock=TickClock())
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        assert tr.active_depth == 0
        assert {s.name for s in tr.spans} == {"inner", "outer"}

    def test_wrap_decorator(self):
        tr = Tracer(clock=TickClock())

        @tr.wrap("fib", cat="misc")
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        assert fib(4) == 3
        assert len(tr.by_cat("misc")) == 9
        assert max(s.depth for s in tr.spans) > 0  # recursion nests

    def test_disabled_tracer_returns_shared_noop(self):
        tr = Tracer(enabled=False)
        assert tr.span("x") is NOOP_SPAN
        assert tr.span("y") is NOOP_SPAN  # same singleton every call
        with tr.span("z") as sp:
            sp.set("k", 1)
        assert len(tr) == 0

    def test_tick_clock_makes_traces_deterministic(self):
        def trace_once():
            tr = Tracer(clock=TickClock(step=2.0, start=100.0))
            with tr.span("a"):
                with tr.span("b"):
                    pass
            return chrome_trace(tr)

        assert trace_once() == trace_once()

    def test_clear_resets_ids(self):
        tr = Tracer(clock=TickClock())
        with tr.span("a"):
            pass
        tr.clear()
        with tr.span("b") as sp:
            pass
        assert sp.span_id == 0 and len(tr) == 1


# -- metrics ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("q", collection="jobs").inc()
        reg.counter("q", collection="jobs").inc(2)
        reg.counter("q", collection="files").inc()
        snap = reg.snapshot()
        values = {tuple(c["labels"].items()): c["value"] for c in snap["counters"]}
        assert values[(("collection", "jobs"),)] == 3
        assert values[(("collection", "files"),)] == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("q", a="1", b="2").inc()
        reg.counter("q", b="2", a="1").inc()
        assert len(reg) == 1

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("lag")
        g.set(3.0)
        g.set(1.5)
        assert reg.snapshot()["gauges"] == [
            {"name": "lag", "labels": {}, "value": 1.5}
        ]

    def test_histogram_bucketing(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
            h.observe(v)
        # bucket i holds edges[i-1] < v <= edges[i] (bisect_left: a value
        # exactly on an edge counts in that edge's own bucket); 1000.0
        # overflows past the last edge.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(1115.5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=())

    def test_default_edges_are_latency_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.edges == LATENCY_BUCKETS

    def test_disabled_registry_hands_out_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NOOP_INSTRUMENT
        assert reg.gauge("g") is NOOP_INSTRUMENT
        assert reg.histogram("h") is NOOP_INSTRUMENT
        reg.counter("c").inc()
        assert len(reg) == 0


# -- ambient context --------------------------------------------------------------


class TestContext:
    def test_default_ambient_is_disabled(self):
        obs = get_obs()
        assert not obs.enabled
        assert obs.tracer.span("x") is NOOP_SPAN

    def test_use_obs_installs_and_restores(self):
        before = get_obs()
        bundle = Obs.collecting(clock=TickClock())
        with use_obs(bundle) as installed:
            assert installed is bundle
            assert get_obs() is bundle
        assert get_obs() is before

    def test_use_obs_none_is_passthrough(self):
        before = get_obs()
        with use_obs(None) as obs:
            assert obs is before
        assert get_obs() is before

    def test_use_obs_restores_on_exception(self):
        before = get_obs()
        with pytest.raises(RuntimeError):
            with use_obs(Obs.collecting()):
                raise RuntimeError
        assert get_obs() is before

    def test_set_obs_returns_previous(self):
        bundle = Obs.collecting()
        prev = set_obs(bundle)
        try:
            assert get_obs() is bundle
        finally:
            set_obs(prev)

    def test_instrument_kernel_records_span_and_counters(self):
        @instrument_kernel("toy", rows=lambda xs: len(xs))
        def toy(xs):
            return [x * 2 for x in xs]

        bundle = Obs.collecting(clock=TickClock())
        with use_obs(bundle):
            assert toy([1, 2, 3]) == [2, 4, 6]
        (span,) = bundle.tracer.spans
        assert (span.name, span.cat, span.attrs["rows"]) == ("kernel.toy", "kernel", 3)
        counters = {c["name"]: c["value"] for c in bundle.metrics.snapshot()["counters"]}
        assert counters == {"kernel.calls": 1, "kernel.rows": 3}

    def test_instrument_kernel_disabled_is_transparent(self):
        calls = []

        @instrument_kernel("toy", rows=lambda xs: calls.append("rows") or len(xs))
        def toy(xs):
            return xs

        assert toy([1]) == [1]
        assert calls == []  # rows callable never evaluated when disabled


# -- exporters --------------------------------------------------------------------


def _traced_bundle() -> Obs:
    bundle = Obs.collecting(clock=TickClock())
    with use_obs(bundle) as obs:
        with obs.tracer.span("outer", cat="study") as sp:
            sp.set("days", 2.0)
            with obs.tracer.span("inner", cat="kernel"):
                pass
        obs.metrics.counter("c", k="v").inc(3)
        obs.metrics.gauge("g").set(1.5)
        obs.metrics.histogram("h", edges=(1.0, 2.0)).observe(1.5)
    return bundle


class TestExporters:
    def test_chrome_trace_shape(self):
        doc = chrome_trace(_traced_bundle().tracer)
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]  # start order
        for e in events:
            assert e["ph"] == "X"
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(e)
        outer, inner = events
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["days"] == 2.0
        # TickClock: outer spans ticks 0..3 -> ts 0us, dur 3 ticks * 1e6
        assert outer["ts"] == 0.0 and outer["dur"] == 3_000_000.0

    def test_chrome_trace_round_trip(self, tmp_path):
        bundle = _traced_bundle()
        path = tmp_path / "trace.json"
        n = write_chrome_trace(path, bundle.tracer)
        assert n == 2
        loaded = json.loads(path.read_text())
        assert loaded == chrome_trace(bundle.tracer)

    def test_metrics_snapshot_round_trip(self, tmp_path):
        bundle = _traced_bundle()
        path = tmp_path / "metrics.json"
        doc = write_metrics_json(path, bundle)
        loaded = json.loads(path.read_text())
        assert loaded == doc == metrics_snapshot(bundle)
        assert loaded["n_spans"] == 2
        assert set(loaded["spans"]) == {"study", "kernel"}
        assert loaded["metrics"]["counters"] == [
            {"name": "c", "labels": {"k": "v"}, "value": 3}
        ]

    def test_stage_summary_orders_by_total_time(self):
        tr = Tracer(clock=TickClock())
        with tr.span("slow", cat="a"):
            with tr.span("fast", cat="b"):
                pass
        rows = stage_summary(tr)
        assert [r["name"] for r in rows] == ["slow", "fast"]
        assert rows[0]["count"] == 1
        text = render_stage_summary(tr, top=1)
        assert "slow" in text and "fast" not in text


# -- integration: instrumented pipeline, identical results ------------------------


@pytest.fixture(scope="module")
def obs_run(small_telemetry, small_study):
    """Matching + stream replay under an enabled bundle, plus baselines."""
    baseline_source = OpenSearchLike.from_telemetry(small_telemetry)
    t0, t1 = small_study.harness.window
    known = small_study.harness.known_site_names()
    baseline = MatchingPipeline(baseline_source, known_sites=known).run(t0, t1)

    bundle = Obs.collecting()
    source = OpenSearchLike.from_telemetry(small_telemetry)
    pipeline = MatchingPipeline(source, known_sites=known, obs=bundle)
    report = pipeline.run(t0, t1)
    with use_obs(bundle):
        from repro.stream import replay_window

        processor = replay_window(small_telemetry, t0, t1, known_sites=known)
    return bundle, report, baseline, processor


class TestInstrumentedPipeline:
    def test_results_bit_identical_to_uninstrumented(self, obs_run):
        _, report, baseline, processor = obs_run
        for method in baseline.methods:
            assert report[method] == baseline[method]
            assert processor.report()[method].matched_pairs() == \
                baseline[method].matched_pairs()

    def test_spans_cover_all_dataplane_stages(self, obs_run):
        bundle, _, _, _ = obs_run
        cats = bundle.tracer.cats()
        assert {"metastore", "artifact", "kernel", "executor", "stream"} <= set(cats)

    def test_metastore_metrics_recorded(self, obs_run):
        bundle, _, _, _ = obs_run
        snap = bundle.metrics.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert "metastore.queries" in names
        assert "metastore.ingested_records" in names
        assert any(h["name"] == "metastore.hit_size" for h in snap["histograms"])

    def test_cache_and_stream_metrics_recorded(self, obs_run):
        bundle, _, _, _ = obs_run
        snap = bundle.metrics.snapshot()
        cache_events = {
            c["labels"]["event"]: c["value"]
            for c in snap["counters"] if c["name"] == "artifact.cache"
        }
        assert cache_events.get("miss", 0) >= 1
        gauges = {g["name"] for g in snap["gauges"]}
        assert "stream.watermark_lag" in gauges

    def test_ambient_left_disabled_after_run(self, obs_run):
        assert not get_obs().enabled

    def test_empty_stream_skips_lag_gauge(self, small_study):
        # Regression companion to the watermark NaN fix: with no events
        # observed the lag gauge must not be written (it would have been
        # NaN under the old WatermarkTracker.lag).
        from repro.stream import StreamProcessor

        bundle = Obs.collecting()
        with use_obs(bundle):
            proc = StreamProcessor(
                0.0, 10.0, known_sites=small_study.harness.known_site_names()
            )
            proc.run([[]])
        gauges = {g["name"]: g["value"] for g in bundle.metrics.snapshot()["gauges"]}
        assert "stream.watermark_lag" not in gauges
        assert gauges.get("stream.pending_jobs") == 0.0


# -- thread safety ----------------------------------------------------------------


class TestObsThreadSafety:
    """Regression hammers for the serving layer's concurrency contract.

    Eight service threads update shared counters, histograms, and spans;
    a single lost ``+=`` would silently corrupt shed-rate / hit-rate
    accounting, so these assert exact totals.
    """

    THREADS = 8
    ROUNDS = 2_000

    def _hammer(self, work):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(self.THREADS) as pool:
            for f in [pool.submit(work, i) for i in range(self.THREADS)]:
                f.result()

    def test_counter_loses_no_updates(self):
        reg = MetricsRegistry()

        def work(_):
            counter = reg.counter("serve.requests", tenant="t", status="ok")
            for _ in range(self.ROUNDS):
                counter.inc()

        self._hammer(work)
        assert reg.counter("serve.requests", tenant="t", status="ok").value \
            == self.THREADS * self.ROUNDS

    def test_histogram_loses_no_observations(self):
        reg = MetricsRegistry()

        def work(i):
            hist = reg.histogram("serve.latency")
            for k in range(self.ROUNDS):
                hist.observe(0.0005 * ((i + k) % 9))

        self._hammer(work)
        hist = reg.histogram("serve.latency")
        assert hist.count == self.THREADS * self.ROUNDS
        assert sum(hist.counts) == hist.count

    def test_concurrent_creation_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        got = []

        def work(_):
            barrier.wait()
            got.append(reg.counter("hot", path="x"))

        self._hammer(work)
        assert all(c is got[0] for c in got)
        assert len(reg) == 1

    def test_histogram_quantile_bucket_resolution(self):
        hist = Histogram(edges=(0.001, 0.01, 0.1))
        for _ in range(90):
            hist.observe(0.0005)
        for _ in range(10):
            hist.observe(0.05)
        assert hist.quantile(0.5) == 0.001
        assert hist.quantile(0.95) == 0.1
        hist.observe(5.0)  # overflow
        assert hist.quantile(1.0) == float("inf")
        import math

        assert math.isnan(Histogram(edges=(1.0,)).quantile(0.5))

    def test_tracer_spans_from_many_threads(self):
        from concurrent.futures import ThreadPoolExecutor

        tr = Tracer()
        per_thread = 200

        def work(i):
            for k in range(per_thread):
                with tr.span(f"outer-{i}") as outer:
                    with tr.span(f"inner-{i}"):
                        pass
            return i

        with ThreadPoolExecutor(self.THREADS) as pool:
            for f in [pool.submit(work, i) for i in range(self.THREADS)]:
                f.result()
        spans = tr.spans
        assert len(spans) == self.THREADS * per_thread * 2
        assert len({s.span_id for s in spans}) == len(spans)  # ids never collide
        # nesting is per-thread: every inner span's parent is an outer
        # span from its own thread (same -<i> suffix)
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name.startswith("inner"):
                parent = by_id[s.parent_id]
                assert parent.name == "outer" + s.name[5:]
