"""Tests for the FTS-like transfer service, selector, rules, and client."""

from typing import List

import numpy as np
import pytest

from repro.grid.presets import build_mini
from repro.grid.rse import RseKind, rse_name
from repro.ids import IdFactory
from repro.rucio.activities import TransferActivity
from repro.rucio.catalog import DidCatalog
from repro.rucio.client import RucioClient
from repro.rucio.did import DID, DatasetDid, FileDid
from repro.rucio.fts import TransferService
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.rucio.selector import ReplicaSelector
from repro.rucio.transfer import TransferEvent, TransferRequest
from repro.sim.engine import Engine


class Rig:
    """A minimal Rucio stack over the mini topology."""

    def __init__(self, seed: int = 1, failure_rate: float = 0.0, link_capacity: int = 12):
        self.engine = Engine()
        self.topo = build_mini(seed=seed)
        self.ids = IdFactory()
        self.catalog = DidCatalog()
        self.replicas = ReplicaRegistry(self.topo)
        self.events: List[TransferEvent] = []
        self.fts = TransferService(
            self.engine, self.topo, self.replicas, self.ids,
            self.events.append, np.random.default_rng(seed),
            link_capacity=link_capacity, failure_rate=failure_rate,
        )
        self.rules = RuleEngine(self.topo, self.catalog, self.replicas, self.fts, self.ids)
        self.client = RucioClient(
            self.topo, self.catalog, self.replicas, self.fts, self.rules, self.ids
        )

    def register_dataset(self, n_files: int = 3, scope: str = "user.a",
                         size: int = 10**9, site: str = "CERN-PROD") -> DatasetDid:
        ds = DatasetDid(did=DID(scope, f"ds{self.ids.next_jeditaskid()}"))
        for i in range(n_files):
            f = FileDid(
                did=DID(scope, self.ids.make_lfn(scope)), size=size,
                dataset_name=ds.did.name, proddblock=ds.did.name,
            )
            self.catalog.register_file(f)
            ds.file_dids.append(f.did)
        self.catalog.register_dataset(ds)
        if site:
            for f in self.catalog.dataset_files(ds.did):
                self.replicas.add(f.did, rse_name(site, RseKind.DATADISK), f.size)
        return ds

    def request(self, file_did: DID, dest_rse: str, **kw) -> TransferRequest:
        f = self.catalog.file(file_did)
        return TransferRequest(
            request_id=self.ids.next_transferid(),
            file_did=file_did, size=f.size, dest_rse=dest_rse,
            activity=kw.pop("activity", TransferActivity.DATA_REBALANCING),
            dataset_name=f.dataset_name, proddblock=f.proddblock, **kw,
        )


class TestSelector:
    def test_prefers_local_replica(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        fd = ds.file_dids[0]
        rig.replicas.add(fd, "BNL-ATLAS_DATADISK", 10**9)
        sel = ReplicaSelector(rig.topo, rig.replicas)
        choice = sel.choose(fd, "CERN-PROD", now=0.0)
        assert choice is not None and choice.source_site == "CERN-PROD"

    def test_none_when_no_replicas(self):
        rig = Rig()
        ds = rig.register_dataset(site="")
        sel = ReplicaSelector(rig.topo, rig.replicas)
        assert sel.choose(ds.file_dids[0], "CERN-PROD", now=0.0) is None

    def test_exclusion(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        fd = ds.file_dids[0]
        sel = ReplicaSelector(rig.topo, rig.replicas)
        choice = sel.choose(fd, "CERN-PROD", 0.0, exclude_rses={"CERN-PROD_DATADISK"})
        assert choice is None

    def test_rank_exhaustive(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        fd = ds.file_dids[0]
        rig.replicas.add(fd, "BNL-ATLAS_DATADISK", 10**9)
        sel = ReplicaSelector(rig.topo, rig.replicas)
        ranked = sel.rank(fd, "CERN-PROD", 0.0)
        assert [c.source_site for c in ranked][0] == "CERN-PROD"
        assert len(ranked) == 2


class TestTransferService:
    def test_transfer_lands_replica_and_event(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        fd = ds.file_dids[0]
        rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK"))
        rig.engine.run()
        assert rig.replicas.get(fd, "BNL-ATLAS_DATADISK") is not None
        assert len(rig.events) == 1
        ev = rig.events[0]
        assert ev.source_site == "CERN-PROD" and ev.destination_site == "BNL-ATLAS"
        assert ev.success and ev.endtime > ev.starttime

    def test_event_carries_job_identity(self):
        rig = Rig()
        ds = rig.register_dataset()
        req = rig.request(ds.file_dids[0], "BNL-ATLAS_DATADISK",
                          pandaid=42, jeditaskid=7)
        rig.fts.submit(req)
        rig.engine.run()
        assert rig.events[0].pandaid == 42
        assert rig.events[0].jeditaskid == 7

    def test_no_source_fails_immediately(self):
        rig = Rig()
        ds = rig.register_dataset(site="")
        rig.fts.submit(rig.request(ds.file_dids[0], "BNL-ATLAS_DATADISK"))
        rig.engine.run()
        assert len(rig.events) == 1
        assert not rig.events[0].success
        assert rig.fts.failed == 1

    def test_group_parallelism_serialises(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=4)
        reqs = [rig.request(fd, "BNL-ATLAS_DATADISK") for fd in ds.file_dids]
        rig.fts.submit_group(reqs, parallelism=1)
        rig.engine.run()
        spans = sorted((e.starttime, e.endtime) for e in rig.events)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9  # sequential: no overlap

    def test_group_parallel_overlaps(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=4, size=20 * 10**9)
        reqs = [rig.request(fd, "BNL-ATLAS_DATADISK") for fd in ds.file_dids]
        rig.fts.submit_group(reqs, parallelism=4)
        rig.engine.run()
        spans = sorted((e.starttime, e.endtime) for e in rig.events)
        overlaps = any(s2 < e1 for (s1, e1), (s2, _) in zip(spans, spans[1:]))
        assert overlaps

    def test_group_completion_callback(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=3)
        done: List[List[TransferEvent]] = []
        reqs = [rig.request(fd, "BNL-ATLAS_DATADISK") for fd in ds.file_dids]
        rig.fts.submit_group(reqs, parallelism=2, on_complete=done.append)
        rig.engine.run()
        assert len(done) == 1 and len(done[0]) == 3

    def test_empty_group_completes(self):
        rig = Rig()
        done: List[List[TransferEvent]] = []
        rig.fts.submit_group([], parallelism=2, on_complete=done.append)
        rig.engine.run()
        assert done == [[]]

    def test_link_capacity_queues(self):
        rig = Rig(link_capacity=1)
        ds = rig.register_dataset(n_files=3)
        for fd in ds.file_dids:
            rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK"))
        rig.engine.run()
        spans = sorted((e.starttime, e.endtime) for e in rig.events)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9

    def test_failures_reported(self):
        rig = Rig(failure_rate=1.0)
        ds = rig.register_dataset()
        rig.fts.submit(rig.request(ds.file_dids[0], "BNL-ATLAS_DATADISK"))
        rig.engine.run()
        assert not rig.events[0].success
        assert rig.replicas.get(ds.file_dids[0], "BNL-ATLAS_DATADISK") is None

    def test_ephemeral_lands_no_replica(self):
        rig = Rig()
        ds = rig.register_dataset()
        req = rig.request(ds.file_dids[0], "BNL-ATLAS_SCRATCHDISK")
        req.ephemeral = True
        rig.fts.submit(req)
        rig.engine.run()
        assert rig.events[0].success
        assert rig.replicas.get(ds.file_dids[0], "BNL-ATLAS_SCRATCHDISK") is None

    def test_parallelism_must_be_positive(self):
        rig = Rig()
        with pytest.raises(ValueError):
            rig.fts.submit_group([], parallelism=0)


class TestRuleEngine:
    def test_rule_triggers_fill(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=2, site="CERN-PROD")
        rule = rig.rules.pin_dataset_at_site(ds.did, "BNL-ATLAS", now=0.0)
        rig.engine.run()
        assert rig.rules.satisfied(rule)
        assert len(rig.events) == 2

    def test_rule_skips_existing_replicas(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=2, site="CERN-PROD")
        rig.rules.pin_dataset_at_site(ds.did, "CERN-PROD", now=0.0)
        rig.engine.run()
        assert rig.events == []

    def test_rule_expiry(self):
        rig = Rig()
        ds = rig.register_dataset()
        rule = rig.rules.pin_dataset_at_site(ds.did, "CERN-PROD", now=0.0, lifetime=100.0)
        assert not rule.expired(50.0)
        assert rule.expired(100.0)
        gone = rig.rules.expire(200.0)
        assert gone == [rule] and rig.rules.n_rules == 0

    def test_protection(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        rig.rules.pin_dataset_at_site(ds.did, "CERN-PROD", now=0.0, lifetime=100.0)
        fd = ds.file_dids[0]
        assert rig.rules.is_protected(fd, "CERN-PROD_DATADISK", now=10.0)
        assert not rig.rules.is_protected(fd, "CERN-PROD_DATADISK", now=200.0)

    def test_unknown_rse_rejected(self):
        rig = Rig()
        ds = rig.register_dataset()
        with pytest.raises(KeyError):
            rig.rules.add_rule(ds.did, ["GHOST_DATADISK"], now=0.0)

    def test_rule_carries_activity(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        rig.rules.pin_dataset_at_site(
            ds.did, "BNL-ATLAS", now=0.0,
            activity=TransferActivity.PRODUCTION_DOWNLOAD, jeditaskid=99,
        )
        rig.engine.run()
        assert all(e.activity is TransferActivity.PRODUCTION_DOWNLOAD for e in rig.events)
        assert all(e.jeditaskid == 99 for e in rig.events)


class TestRucioClient:
    def test_dataset_locations(self):
        rig = Rig()
        ds = rig.register_dataset(site="CERN-PROD")
        assert rig.client.dataset_locations(ds.did) == {"CERN-PROD"}

    def test_partial_locations(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=2, site="CERN-PROD")
        rig.replicas.add(ds.file_dids[0], "BNL-ATLAS_DATADISK", 10**9)
        partial = rig.client.partial_locations(ds.did)
        assert partial["CERN-PROD"] == 2 and partial["BNL-ATLAS"] == 1
        assert rig.client.dataset_locations(ds.did) == {"CERN-PROD"}

    def test_stage_in_all_files_local_copy(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=3, site="CERN-PROD")
        rig.client.stage_in(
            ds.did, "CERN-PROD", TransferActivity.ANALYSIS_DOWNLOAD,
            pandaid=1, jeditaskid=2,
        )
        rig.engine.run()
        assert len(rig.events) == 3
        assert all(e.is_local for e in rig.events)

    def test_stage_in_remote_pull(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=2, site="CERN-PROD")
        rig.client.stage_in(
            ds.did, "BNL-ATLAS", TransferActivity.ANALYSIS_DOWNLOAD,
            pandaid=1, jeditaskid=2,
        )
        rig.engine.run()
        assert all(e.source_site == "CERN-PROD" for e in rig.events)
        assert all(e.destination_site == "BNL-ATLAS" for e in rig.events)

    def test_stage_in_subset(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=4, site="CERN-PROD")
        rig.client.stage_in(
            ds.did, "CERN-PROD", TransferActivity.ANALYSIS_DOWNLOAD,
            pandaid=1, jeditaskid=2, file_dids=ds.file_dids[:2],
        )
        rig.engine.run()
        assert len(rig.events) == 2

    def test_stage_in_rejects_upload_activity(self):
        rig = Rig()
        ds = rig.register_dataset()
        with pytest.raises(ValueError):
            rig.client.stage_in(
                ds.did, "CERN-PROD", TransferActivity.ANALYSIS_UPLOAD,
                pandaid=1, jeditaskid=2,
            )

    def test_direct_io_streams_are_ephemeral(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=2, site="CERN-PROD")
        rig.client.stage_in(
            ds.did, "CERN-PROD", TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
            pandaid=1, jeditaskid=2,
        )
        rig.engine.run()
        assert len(rig.events) == 2
        for fd in ds.file_dids:
            assert rig.replicas.get(fd, "CERN-PROD_SCRATCHDISK") is None

    def test_register_and_stage_out(self):
        rig = Rig()
        ds_out = rig.client.register_output_dataset("user.a", 777)
        f = rig.client.register_output_file(ds_out, 5 * 10**8, "CERN-PROD", now=0.0)
        rig.client.stage_out(
            [f], "CERN-PROD", "BNL-ATLAS", TransferActivity.ANALYSIS_UPLOAD,
            pandaid=3, jeditaskid=777,
        )
        rig.engine.run()
        assert len(rig.events) == 1
        ev = rig.events[0]
        assert ev.is_upload and ev.source_site == "CERN-PROD"
        assert rig.replicas.get(f.did, "BNL-ATLAS_DATADISK") is not None

    def test_stage_out_rejects_download_activity(self):
        rig = Rig()
        with pytest.raises(ValueError):
            rig.client.stage_out(
                [], "CERN-PROD", "BNL-ATLAS", TransferActivity.ANALYSIS_DOWNLOAD,
                pandaid=1, jeditaskid=1,
            )

    def test_missing_files_at(self):
        rig = Rig()
        ds = rig.register_dataset(n_files=3, site="CERN-PROD")
        rig.replicas.add(ds.file_dids[0], "BNL-ATLAS_DATADISK", 10**9)
        missing = rig.client.missing_files_at(ds.did, "BNL-ATLAS")
        assert len(missing) == 2
