"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anomaly.imbalance import gini_coefficient
from repro.core.matching.base import CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.metastore.index import FieldIndex
from repro.panda.harvester import interval_union_length
from repro.reporting.figures import sparkline
from repro.sim.engine import Engine
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_file, make_job, make_transfer

# -- event engine ----------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False), max_size=60))
@settings(max_examples=60, deadline=None)
def test_engine_executes_in_nondecreasing_time(times):
    engine = Engine()
    seen = []
    for t in times:
        engine.schedule_at(t, lambda t=t: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)


# -- interval union ----------------------------------------------------------------

interval = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
).map(lambda ab: (min(ab), max(ab)))


@given(st.lists(interval, max_size=30),
       st.floats(min_value=0, max_value=1000, allow_nan=False),
       st.floats(min_value=0, max_value=1000, allow_nan=False))
@settings(max_examples=120, deadline=None)
def test_interval_union_bounded_by_window(intervals, a, b):
    lo, hi = min(a, b), max(a, b)
    length = interval_union_length(intervals, lo, hi)
    assert 0.0 <= length <= (hi - lo) + 1e-9


@given(st.lists(interval, max_size=20), st.lists(interval, max_size=20))
@settings(max_examples=80, deadline=None)
def test_interval_union_monotone_in_intervals(xs, ys):
    """Adding intervals can only grow the union."""
    u1 = interval_union_length(xs, 0, 1000)
    u2 = interval_union_length(xs + ys, 0, 1000)
    assert u2 >= u1 - 1e-9


@given(st.lists(interval, max_size=20))
@settings(max_examples=60, deadline=None)
def test_interval_union_at_most_sum(xs):
    total = sum(b - a for a, b in xs)
    assert interval_union_length(xs, 0, 1000) <= total + 1e-9


# -- field index vs brute force ------------------------------------------------------


@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=80),
       st.integers(min_value=-60, max_value=60),
       st.integers(min_value=-60, max_value=60))
@settings(max_examples=80, deadline=None)
def test_field_index_range_matches_bruteforce(values, lo, hi):
    idx = FieldIndex("v")
    for i, v in enumerate(values):
        idx.add(i, v)
    got = idx.range(gte=min(lo, hi), lt=max(lo, hi))
    expected = {i for i, v in enumerate(values) if min(lo, hi) <= v < max(lo, hi)}
    assert got == expected


@given(st.lists(st.sampled_from("abcde"), max_size=60), st.sampled_from("abcde"))
@settings(max_examples=60, deadline=None)
def test_field_index_term_matches_bruteforce(values, probe):
    idx = FieldIndex("v")
    for i, v in enumerate(values):
        idx.add(i, v)
    assert idx.term(probe) == {i for i, v in enumerate(values) if v == probe}


# -- matching monotonicity on random degraded populations ------------------------------


@st.composite
def degraded_population(draw):
    """A job + files + transfers, randomly perturbed like the degrader."""
    n_files = draw(st.integers(min_value=1, max_value=5))
    job = make_job(nin=n_files * 1000, end=draw(st.floats(500, 5000)))
    files, transfers = [], []
    for i in range(n_files):
        files.append(make_file(lfn=f"f{i}", size=1000))
        size = draw(st.sampled_from([1000, 1001]))          # size drift
        taskid = draw(st.sampled_from([100, 100, 100, 0]))  # taskid loss
        dst = draw(st.sampled_from(["SITE-A", "SITE-A", UNKNOWN_SITE, "SITE-B"]))
        start = draw(st.floats(0, 4000))
        transfers.append(make_transfer(
            row_id=i + 1, lfn=f"f{i}", size=size, dst=dst,
            start=start, end=start + draw(st.floats(1, 100)),
            jeditaskid=taskid,
        ))
    return job, files, transfers


@given(degraded_population())
@settings(max_examples=120, deadline=None)
def test_matchers_nest(pop):
    job, files, transfers = pop
    index = CandidateIndex(files, transfers)
    known = {"SITE-A", "SITE-B"}
    exact = ExactMatcher(known).run([job], index, len(transfers))
    rm1 = RM1Matcher(known).run([job], index, len(transfers))
    rm2 = RM2Matcher(known).run([job], index, len(transfers))
    assert exact.matched_transfer_ids() <= rm1.matched_transfer_ids()
    assert rm1.matched_transfer_ids() <= rm2.matched_transfer_ids()
    assert exact.n_matched_jobs <= rm1.n_matched_jobs <= rm2.n_matched_jobs


@given(degraded_population())
@settings(max_examples=80, deadline=None)
def test_matched_transfers_satisfy_time_condition(pop):
    job, files, transfers = pop
    index = CandidateIndex(files, transfers)
    for matcher in (ExactMatcher(), RM1Matcher(), RM2Matcher()):
        res = matcher.run([job], index, len(transfers))
        for m in res.matches:
            for t in m.transfers:
                assert t.starttime < m.job.endtime


# -- gini ----------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
                min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_gini_in_unit_interval(values):
    g = gini_coefficient(np.array(values))
    assert -1e-9 <= g <= 1.0


@given(st.floats(min_value=0.1, max_value=1e6), st.integers(min_value=2, max_value=50))
@settings(max_examples=50, deadline=None)
def test_gini_zero_for_equal(value, n):
    assert gini_coefficient(np.full(n, value)) < 1e-6


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50),
       st.floats(min_value=1.1, max_value=10))
@settings(max_examples=50, deadline=None)
def test_gini_scale_invariant(values, k):
    v = np.array(values)
    assert gini_coefficient(v) == pytest.approx(gini_coefficient(v * k), abs=1e-6)


# -- sparkline --------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=500),
       st.integers(min_value=1, max_value=120))
@settings(max_examples=60, deadline=None)
def test_sparkline_width_bounded(values, width):
    s = sparkline(values, width=width)
    assert len(s) == min(len(values), width)
