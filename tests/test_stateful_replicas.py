"""Stateful property test: the replica registry under random operations.

A hypothesis rule-based state machine performs random add / remove /
mark-available operations against a model dict and checks the registry's
invariants after every step:

* per-RSE ``used_bytes`` equals the sum of its replicas' sizes;
* by-file and by-RSE views agree;
* availability queries match the model exactly.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.grid.presets import build_mini
from repro.rucio.did import DID
from repro.rucio.replica import ReplicaRegistry, ReplicaState

RSES = ["CERN-PROD_DATADISK", "BNL-ATLAS_DATADISK", "NDGF-T1_SCRATCHDISK"]
FILES = [DID("s", f"f{i}") for i in range(6)]


class ReplicaMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.topo = build_mini(seed=0)
        self.reg = ReplicaRegistry(self.topo)
        #: model: (did, rse) -> (size, available)
        self.model: dict[tuple[DID, str], tuple[int, bool]] = {}

    # -- operations -------------------------------------------------------------

    @rule(f=st.sampled_from(FILES), rse=st.sampled_from(RSES),
          size=st.integers(min_value=1, max_value=10**9),
          available=st.booleans())
    def add(self, f, rse, size, available):
        key = (f, rse)
        if key in self.model:
            return  # duplicate adds raise; covered by unit tests
        state = ReplicaState.AVAILABLE if available else ReplicaState.COPYING
        self.reg.add(f, rse, size, state=state)
        self.model[key] = (size, available)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.model, key=str)))
        f, rse = key
        self.reg.remove(f, rse)
        del self.model[key]

    @precondition(lambda self: any(not v[1] for v in self.model.values()))
    @rule(data=st.data())
    def mark_available(self, data):
        copying = sorted((k for k, v in self.model.items() if not v[1]), key=str)
        f, rse = data.draw(st.sampled_from(copying))
        self.reg.mark_available(f, rse)
        size, _ = self.model[(f, rse)]
        self.model[(f, rse)] = (size, True)

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def rse_accounting_consistent(self):
        for rse_name in RSES:
            expected = sum(
                size for (f, r), (size, _) in self.model.items() if r == rse_name
            )
            assert self.topo.rse(rse_name).used_bytes == expected

    @invariant()
    def views_agree(self):
        for rse_name in RSES:
            files_here = {f for (f, r) in self.model if r == rse_name}
            assert self.reg.files_at_rse(rse_name) == files_here
        for f in FILES:
            rses_of_f = {r for (g, r) in self.model if g == f}
            assert {rep.rse_name for rep in self.reg.replicas_of(f)} == rses_of_f

    @invariant()
    def availability_matches_model(self):
        for f in FILES:
            expected_sites = {
                self.topo.rse(r).site_name
                for (g, r), (_, avail) in self.model.items()
                if g == f and avail
            }
            assert self.reg.sites_with_file(f) == expected_sites

    @invariant()
    def replica_count_matches(self):
        assert self.reg.n_replicas() == len(self.model)


TestReplicaMachine = ReplicaMachine.TestCase
TestReplicaMachine.settings = settings(max_examples=40, stateful_step_count=30,
                                       deadline=None)
