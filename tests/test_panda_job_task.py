"""Tests for jobs, tasks, errors, and the global queue."""

import numpy as np
import pytest

from repro.grid.site import Site
from repro.grid.tier import Tier
from repro.panda.errors import (
    ERROR_MESSAGES,
    ErrorCode,
    FailureModel,
    PAYLOAD_ERROR_WEIGHTS,
    PandaError,
)
from repro.panda.job import DataAccessMode, Job, JobKind, JobStatus
from repro.panda.queue import GlobalQueue
from repro.panda.task import JediTask, TaskStatus
from repro.rucio.did import DID


def make_job(pandaid=1, taskid=10, priority=1000, creation=0.0) -> Job:
    return Job(
        pandaid=pandaid,
        jeditaskid=taskid,
        kind=JobKind.ANALYSIS,
        access_mode=DataAccessMode.DIRECT_LOCAL,
        input_dataset=DID("s", "ds"),
        input_file_dids=[],
        ninputfilebytes=100,
        noutputfilebytes=0,
        creation_time=creation,
        priority=priority,
    )


class TestJobLifecycle:
    def test_legal_happy_path(self):
        j = make_job()
        for st in (JobStatus.ASSIGNED, JobStatus.READY, JobStatus.RUNNING, JobStatus.FINISHED):
            j.transition(st)
        assert j.succeeded and j.status.is_terminal

    def test_illegal_transition_rejected(self):
        j = make_job()
        with pytest.raises(RuntimeError):
            j.transition(JobStatus.RUNNING)

    def test_terminal_is_frozen(self):
        j = make_job()
        j.transition(JobStatus.ASSIGNED)
        j.transition(JobStatus.FAILED)
        with pytest.raises(RuntimeError):
            j.transition(JobStatus.READY)

    def test_time_semantics(self):
        """§4.2: queuing = creation->start, wall = start->end."""
        j = make_job(creation=100.0)
        assert j.queuing_time is None and j.lifetime is None
        j.start_time = 400.0
        j.end_time = 1000.0
        assert j.queuing_time == 300.0
        assert j.wall_time == 600.0
        assert j.lifetime == 900.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Job(
                pandaid=1, jeditaskid=1, kind=JobKind.ANALYSIS,
                access_mode=DataAccessMode.DIRECT_LOCAL, input_dataset=None,
                input_file_dids=[], ninputfilebytes=-1, noutputfilebytes=0,
                creation_time=0.0,
            )


class TestJediTask:
    def _task(self) -> JediTask:
        return JediTask(
            jeditaskid=10, kind=JobKind.ANALYSIS, scope="user.x",
            access_mode=DataAccessMode.DIRECT_LOCAL,
        )

    def _finish(self, job: Job, ok: bool) -> None:
        job.transition(JobStatus.ASSIGNED)
        job.transition(JobStatus.READY)
        job.transition(JobStatus.RUNNING)
        job.transition(JobStatus.FINISHED if ok else JobStatus.FAILED)

    def test_running_until_all_terminal(self):
        t = self._task()
        j = make_job(taskid=10)
        t.add_job(j)
        assert t.status() is TaskStatus.RUNNING

    def test_finished_when_mostly_ok(self):
        t = self._task()
        jobs = [make_job(pandaid=i, taskid=10) for i in range(4)]
        for i, j in enumerate(jobs):
            t.add_job(j)
            self._finish(j, ok=(i != 0))
        assert t.status() is TaskStatus.FINISHED
        assert t.failed_fraction() == 0.25

    def test_failed_when_majority_fails(self):
        t = self._task()
        jobs = [make_job(pandaid=i, taskid=10) for i in range(4)]
        for i, j in enumerate(jobs):
            t.add_job(j)
            self._finish(j, ok=(i == 0))
        assert t.status() is TaskStatus.FAILED

    def test_rejects_foreign_job(self):
        t = self._task()
        with pytest.raises(ValueError):
            t.add_job(make_job(taskid=99))

    def test_empty_task_running(self):
        assert self._task().status() is TaskStatus.RUNNING
        assert self._task().failed_fraction() is None


class TestGlobalQueue:
    def test_priority_order(self):
        q = GlobalQueue()
        low = make_job(pandaid=1, priority=10)
        high = make_job(pandaid=2, priority=100)
        q.push(low)
        q.push(high)
        assert q.pop() is high

    def test_fifo_within_priority(self):
        q = GlobalQueue()
        a = make_job(pandaid=1, creation=0.0)
        b = make_job(pandaid=2, creation=1.0)
        q.push(b)
        q.push(a)
        assert q.pop() is a

    def test_empty_pop(self):
        assert GlobalQueue().pop() is None

    def test_rejects_non_defined(self):
        q = GlobalQueue()
        j = make_job()
        j.transition(JobStatus.ASSIGNED)
        with pytest.raises(ValueError):
            q.push(j)

    def test_drain(self):
        q = GlobalQueue()
        for i in range(5):
            q.push(make_job(pandaid=i, creation=float(i)))
        assert len(q.drain(3)) == 3
        assert len(q) == 2
        assert len(q.drain()) == 2


class TestFailureModel:
    def test_probability_monotone_in_staging(self):
        fm = FailureModel()
        site = Site("X", Tier.T2, "Asia", reliability=0.97)
        p0 = fm.payload_failure_probability(site, 0.0)
        p1 = fm.payload_failure_probability(site, 1.0)
        assert p0 < p1 <= fm.max_failure_rate

    def test_reliability_matters(self):
        fm = FailureModel()
        good = Site("G", Tier.T2, "Asia", reliability=0.99)
        bad = Site("B", Tier.T2, "Asia", reliability=0.85)
        assert fm.payload_failure_probability(bad, 0.0) > fm.payload_failure_probability(good, 0.0)

    def test_draw_outcome_distribution(self):
        fm = FailureModel(base_failure_rate=0.5, staging_coupling=0.0)
        site = Site("X", Tier.T2, "Asia", reliability=1.0)
        rng = np.random.default_rng(0)
        outcomes = [fm.draw_payload_outcome(rng, site, 0.0) for _ in range(2000)]
        failures = [o for o in outcomes if o.code is not ErrorCode.NONE]
        assert 0.4 < len(failures) / 2000 < 0.6
        assert all(o.code in PAYLOAD_ERROR_WEIGHTS for o in failures)

    def test_error_messages_defined(self):
        for code in ErrorCode:
            assert code in ERROR_MESSAGES

    def test_overlay_error_text(self):
        """Fig 11's error 1305."""
        err = PandaError.of(ErrorCode.PAYLOAD_OVERLAY)
        assert err.code == 1305
        assert err.message == "Non-zero return code from Overlay (1)"

    def test_clipping(self):
        fm = FailureModel(base_failure_rate=0.9, staging_coupling=1.0)
        site = Site("X", Tier.T2, "Asia", reliability=0.85)
        assert fm.payload_failure_probability(site, 1.0) == fm.max_failure_rate
