"""Tests for workload profiles, arrivals, and the generator."""

import numpy as np
import pytest

from repro.panda.job import DataAccessMode, JobKind
from repro.rucio.activities import TransferActivity
from repro.workload.arrival import DiurnalPoissonArrivals
from repro.workload.profiles import ANALYSIS_DEFAULT, PRODUCTION_DEFAULT, WorkloadProfile


class TestProfiles:
    def test_default_mix_sums_to_one(self):
        assert sum(ANALYSIS_DEFAULT.access_mode_mix.values()) == pytest.approx(1.0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad",
                access_mode_mix={DataAccessMode.DIRECT_LOCAL: 0.5},
            )

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", files_per_dataset=(5, 2))
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", jobs_per_task=(0, 2))

    def test_production_always_uploads_direct_local(self):
        assert PRODUCTION_DEFAULT.upload_probability == 1.0
        assert PRODUCTION_DEFAULT.access_mode_mix[DataAccessMode.DIRECT_LOCAL] == 1.0


class TestArrivals:
    def test_sorted_within_window(self):
        arr = DiurnalPoissonArrivals(10.0, np.random.default_rng(0))
        times = arr.sample(0.0, 86400.0)
        assert times == sorted(times)
        assert all(0 <= t < 86400.0 for t in times)

    def test_rate_matches_average(self):
        arr = DiurnalPoissonArrivals(12.0, np.random.default_rng(1))
        times = arr.sample(0.0, 30 * 86400.0)
        per_hour = len(times) / (30 * 24)
        assert per_hour == pytest.approx(12.0, rel=0.1)

    def test_diurnal_modulation_visible(self):
        arr = DiurnalPoissonArrivals(30.0, np.random.default_rng(2), amplitude=0.9)
        times = np.array(arr.sample(0.0, 60 * 86400.0))
        hours = (times / 3600.0) % 24
        peak = ((hours > 12) & (hours < 17)).sum()
        trough = (hours < 5).sum()
        assert peak > trough * 1.5

    def test_rate_at_bounds(self):
        arr = DiurnalPoissonArrivals(10.0, np.random.default_rng(0), amplitude=0.5)
        rates = [arr.rate_at(h * 3600.0) for h in range(24)]
        assert max(rates) <= 15.0 + 1e-9
        assert min(rates) >= 5.0 - 1e-9

    def test_empty_window(self):
        arr = DiurnalPoissonArrivals(10.0, np.random.default_rng(0))
        assert arr.sample(10.0, 10.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(1.0, np.random.default_rng(0), amplitude=1.0)


class TestGeneratorOnTinyHarness:
    """The generator drives a real (tiny) harness; structure checks."""

    def test_campaign_produces_jobs_and_transfers(self, tiny_harness):
        tiny_harness.run()
        c = tiny_harness.collector
        assert c.n_jobs > 0
        assert c.n_transfers > 0

    def test_tasks_registered_for_all_jobs(self, tiny_harness):
        tiny_harness.run()
        for job in tiny_harness.collector.completed_jobs:
            assert job.jeditaskid in tiny_harness.panda.tasks

    def test_job_chunks_partition_dataset(self, tiny_harness):
        tiny_harness.run()
        tasks = tiny_harness.panda.tasks
        catalog = tiny_harness.catalog
        for task in tasks.values():
            if not task.jobs or task.input_dataset is None:
                continue
            all_files = {f.did for f in catalog.resolve_files(task.input_dataset)}
            seen = []
            for j in task.jobs:
                seen.extend(j.input_file_dids)
            # chunks are disjoint and within the dataset
            assert len(seen) == len(set(seen))
            assert set(seen) <= all_files

    def test_ninputfilebytes_matches_chunk(self, tiny_harness):
        tiny_harness.run()
        catalog = tiny_harness.catalog
        for job in tiny_harness.collector.completed_jobs:
            if job.input_file_dids:
                total = sum(catalog.file(fd).size for fd in job.input_file_dids)
                assert job.ninputfilebytes == total

    def test_production_tasks_direct_local(self, tiny_harness):
        tiny_harness.run()
        prod = [j for j in tiny_harness.collector.completed_jobs
                if j.kind is JobKind.PRODUCTION]
        assert all(j.access_mode is DataAccessMode.DIRECT_LOCAL for j in prod)
        assert all(j.uploads_output for j in prod)

    def test_background_transfers_present(self, tiny_harness):
        tiny_harness.run()
        acts = {e.activity for e in tiny_harness.collector.transfer_events}
        background = {TransferActivity.DATA_REBALANCING, TransferActivity.DATA_CONSOLIDATION}
        assert acts & background

    def test_background_has_no_job_identity(self, tiny_harness):
        tiny_harness.run()
        for e in tiny_harness.collector.transfer_events:
            if not e.activity.is_job_driven:
                assert e.pandaid == 0

    def test_local_background_dominates(self, tiny_harness):
        tiny_harness.run()
        bg = [e for e in tiny_harness.collector.transfer_events
              if not e.activity.is_job_driven]
        if len(bg) >= 20:
            local = sum(1 for e in bg if e.is_local)
            assert local / len(bg) > 0.5
