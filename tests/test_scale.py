"""Tests for the scale-ladder workload generator and scenario.

The generator is only useful if its ground truth is *analytic*: every
rung must know exactly how many jobs each method matches, so a
paper-scale run can be verified without a reference implementation.
These tests pin that — the synthesized population matches its own
``expected_matches`` under the real pipeline, is bit-identical to the
record-based metastore fed the same records, and the rung/ladder
drivers emit the artifact schema the CI gates read.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.opensearch import OpenSearchLike
from repro.scenarios.scale import (
    DEFAULT_RUNGS,
    PAPER_RUNG,
    run_rung,
    scale_ladder,
)
from repro.workload.scale import ScaleConfig, synthesize

CONFIG = ScaleConfig(n_jobs=240, seed=7)


@pytest.fixture(scope="module")
def dataset():
    return synthesize(CONFIG)


class TestSynthesize:
    def test_population_counts(self, dataset):
        ds = dataset
        assert ds.n_jobs == CONFIG.n_jobs
        assert 0 < ds.n_user_jobs <= ds.n_jobs
        assert CONFIG.files_per_job_min * ds.n_jobs <= ds.n_files
        assert ds.n_files <= CONFIG.files_per_job_max * ds.n_jobs
        assert ds.n_transfers >= ds.n_transfers_with_taskid
        assert ds.source.counts() == {
            "jobs": ds.n_jobs, "files": ds.n_files, "transfers": ds.n_transfers
        }

    def test_deterministic_for_a_seed(self):
        a, b = synthesize(CONFIG), synthesize(CONFIG)
        assert np.array_equal(a.source.columns.jobs.pandaid,
                              b.source.columns.jobs.pandaid)
        assert np.array_equal(a.source.columns.transfers.starttime,
                              b.source.columns.transfers.starttime)
        assert a.expected_matches == b.expected_matches

    def test_seeds_differ(self):
        other = synthesize(ScaleConfig(n_jobs=240, seed=8))
        assert not np.array_equal(
            other.source.columns.jobs.endtime,
            synthesize(CONFIG).source.columns.jobs.endtime,
        )

    def test_jobs_are_endtime_sorted_and_transfers_starttime_sorted(self, dataset):
        ends = dataset.source.columns.jobs.endtime
        starts = dataset.source.columns.transfers.starttime
        assert np.all(np.diff(ends) >= 0)
        assert np.all(np.diff(starts) >= 0)

    def test_expected_matches_ladder_is_monotone(self, dataset):
        e = dataset.expected_matches
        assert e["exact"] <= e["rm1"] <= e["rm2"] <= dataset.n_user_jobs


class TestGroundTruth:
    def test_pipeline_matches_exactly_the_expected_counts(self, dataset):
        ds = dataset
        report = MatchingPipeline(
            ds.source, known_sites=ds.known_sites
        ).run(*ds.window)
        for method, expected in ds.expected_matches.items():
            assert report[method].n_matched_jobs == expected

    def test_parity_with_record_based_metastore(self, dataset):
        # The PackSource is the array-native fast path; the same records
        # pushed through the reference OpenSearchLike store must produce
        # a bit-identical report.
        ds = dataset
        src = ds.source
        jobs = [src.job_record(i) for i in range(ds.n_jobs)]
        files = [src.file_record(i) for i in range(ds.n_files)]
        transfers = [src.transfer_record(i) for i in range(ds.n_transfers)]
        ref = OpenSearchLike()
        ref.ingest_batch(jobs=jobs, files=files, transfers=transfers)
        got = MatchingPipeline(src, known_sites=ds.known_sites).run(*ds.window)
        want = MatchingPipeline(ref, known_sites=ds.known_sites).run(*ds.window)
        for m in want.methods:
            assert got[m].matched_pairs() == want[m].matched_pairs()
            assert got[m] == want[m]
        assert got == want


class TestScaleScenario:
    def test_run_rung_emits_the_artifact_schema(self):
        row = run_rung(CONFIG)
        for key in ("n_jobs", "n_user_jobs", "n_files", "n_transfers",
                    "n_transfers_with_taskid", "shard_seconds", "shards",
                    "workers", "engine", "seed_mode", "generate_seconds",
                    "match_seconds", "analyze_seconds", "match_jobs_per_sec",
                    "match_transfers_per_sec", "matched_jobs",
                    "expected_matches", "rss_mb", "peak_rss_mb", "headline"):
            assert key in row
        assert row["matched_jobs"] == row["expected_matches"]
        assert row["seed_mode"] == "serial"
        assert row["shards"]["jobs"] >= 1
        assert row["peak_rss_mb"] > 0

    def test_run_rung_without_analyses_skips_headline(self):
        row = run_rung(ScaleConfig(n_jobs=120, seed=3), analyses=False)
        assert "headline" not in row
        assert row["analyze_seconds"] == 0.0

    def test_ladder_payload(self):
        payload = scale_ladder(rungs=(120, 240), seed=11)
        assert [r["n_jobs"] for r in payload["rungs"]] == [120, 240]
        assert payload["config"]["seed"] == 11
        assert payload["paper"]["n_user_jobs"] == 966_000
        # More jobs, more sharded time slices covered per collection.
        assert all(r["shards"]["jobs"] >= 1 for r in payload["rungs"])

    def test_default_rungs_climb_to_paper_scale(self):
        assert all(b == 10 * a for a, b in zip(DEFAULT_RUNGS, DEFAULT_RUNGS[1:]))
        assert PAPER_RUNG >= 900_000
