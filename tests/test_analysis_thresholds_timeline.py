"""Tests for the Fig 9 threshold sweep and Fig 10-12 timelines."""

import pytest

from repro.core.analysis.queuing import JobTransferTiming, timings_for_result
from repro.core.analysis.thresholds import StatusCombo, threshold_sweep
from repro.core.analysis.timeline import (
    build_timeline,
    find_failed_with_overlap,
    find_high_staging_success,
    find_sequential_underutilized,
)
from repro.core.matching.base import JobMatch, TransferClass

from tests.helpers import make_job, make_transfer


def timing(pct, status="finished", taskstatus="finished"):
    return JobTransferTiming(
        pandaid=1, status=status, taskstatus=taskstatus,
        queuing_time=100.0, transfer_time=pct, transfer_bytes=1,
        transfer_class=TransferClass.ALL_LOCAL, n_transfers=1,
    )


class TestStatusCombo:
    @pytest.mark.parametrize("job,task,expected", [
        ("finished", "finished", StatusCombo.JOB_OK_TASK_OK),
        ("failed", "finished", StatusCombo.JOB_FAIL_TASK_OK),
        ("finished", "failed", StatusCombo.JOB_OK_TASK_FAIL),
        ("failed", "failed", StatusCombo.JOB_FAIL_TASK_FAIL),
    ])
    def test_classification(self, job, task, expected):
        assert StatusCombo.of(timing(5, job, task)) is expected


class TestThresholdSweep:
    def test_cumulative_counts(self):
        ts = [timing(0.5), timing(1.5), timing(30.0), timing(80.0, status="failed")]
        sweep = threshold_sweep(ts, thresholds=[1, 2, 50, 100])
        ok = StatusCombo.JOB_OK_TASK_OK
        assert sweep.below(ok, 1) == 1
        assert sweep.below(ok, 2) == 2
        assert sweep.below(ok, 50) == 3
        assert sweep.below(ok, 100) == 3
        assert sweep.above(StatusCombo.JOB_FAIL_TASK_OK, 50) == 1

    def test_cumulative_monotone(self):
        ts = [timing(float(p)) for p in range(0, 100, 7)]
        sweep = threshold_sweep(ts)
        for combo in StatusCombo:
            series = sweep.cumulative[combo]
            assert series == sorted(series)

    def test_tail_total(self):
        ts = [timing(80.0), timing(90.0, status="failed"), timing(10.0)]
        sweep = threshold_sweep(ts, thresholds=[75, 100])
        assert sweep.tail_total(75) == 2

    def test_success_fraction(self):
        ts = [timing(1), timing(1), timing(1, status="failed")]
        sweep = threshold_sweep(ts)
        assert sweep.success_fraction() == pytest.approx(2 / 3)

    def test_failure_enrichment(self):
        ts = [timing(1.0)] * 8 + [timing(90.0, status="failed")] * 2
        sweep = threshold_sweep(ts, thresholds=[75, 100])
        assert sweep.failure_enrichment(75) > 1.0

    def test_tail_requires_grid_to_100(self):
        sweep = threshold_sweep([timing(5)], thresholds=[10, 50])
        with pytest.raises(ValueError):
            sweep.above(StatusCombo.JOB_OK_TASK_OK, 10)

    def test_study_tail_is_failure_enriched(self, small_report):
        """Fig 9's core finding on simulated data."""
        ts = timings_for_result(small_report["exact"])
        sweep = threshold_sweep(ts)
        assert 0.6 < sweep.success_fraction() < 0.95
        if sweep.tail_total(75) >= 3:
            assert sweep.failure_enrichment(75) > 1.0


def match_with(transfers, **job_kw) -> JobMatch:
    job = make_job(**job_kw)
    return JobMatch(job=job, transfers=transfers)


class TestTimeline:
    def test_relative_axes(self):
        m = match_with(
            [make_transfer(start=10.0, end=60.0)],
            creation=0.0, start=100.0, end=400.0,
        )
        tl = build_timeline(m)
        assert tl.queuing_time == 100.0 and tl.wall_time == 300.0
        assert tl.transfers[0].rel_start == 10.0
        assert tl.transfers[0].rel_end == 60.0

    def test_missing_times_none(self):
        m = match_with([], start=None, end=None)
        assert build_timeline(m) is None

    def test_throughput_spread(self):
        m = match_with([
            make_transfer(row_id=1, size=1000, start=0.0, end=1.0),    # 1000 B/s
            make_transfer(row_id=2, size=1000, start=1.0, end=101.0),  # 10 B/s
        ])
        tl = build_timeline(m)
        assert tl.throughput_spread() == pytest.approx(100.0)

    def test_sequential_detection(self):
        seq = match_with([
            make_transfer(row_id=1, start=0.0, end=10.0),
            make_transfer(row_id=2, start=10.0, end=20.0),
        ])
        par = match_with([
            make_transfer(row_id=1, start=0.0, end=10.0),
            make_transfer(row_id=2, start=3.0, end=13.0),
        ])
        assert build_timeline(seq).transfers_are_sequential()
        assert not build_timeline(par).transfers_are_sequential()

    def test_sequential_tolerance_equality_edge(self):
        """Overlap of exactly ``tolerance`` counts as sequential (closed
        semantics); one epsilon more does not.  The overlap is measured
        directly (e1 - s2 > tolerance), so the edge no longer depends
        on the magnitude of the absolute timestamps."""
        exactly = match_with([
            make_transfer(row_id=1, start=0.0, end=10.0),
            make_transfer(row_id=2, start=9.0, end=20.0),   # overlap == 1.0
        ])
        over = match_with([
            make_transfer(row_id=1, start=0.0, end=10.0),
            make_transfer(row_id=2, start=8.5, end=20.0),   # overlap == 1.5
        ])
        assert build_timeline(exactly).transfers_are_sequential(tolerance=1.0)
        assert not build_timeline(over).transfers_are_sequential(tolerance=1.0)
        # Large offsets: near 2**53 the float spacing is 2.0, so the old
        # shifted bound ``s2 < e1 - tolerance`` rounded (base+2) - 1 back
        # down to base and reported a 2-second overlap as sequential.
        # Direct subtraction measures the overlap exactly.
        base = 2.0**53
        shifted = match_with([
            make_transfer(row_id=1, start=base, end=base + 2.0),
            make_transfer(row_id=2, start=base, end=base + 4.0),
        ])
        assert not build_timeline(shifted).transfers_are_sequential(tolerance=1.0)

    def test_spanning_detection(self):
        m = match_with(
            [make_transfer(start=50.0, end=1500.0)],
            creation=0.0, start=1000.0, end=2000.0,
        )
        tl = build_timeline(m)
        assert len(tl.transfers_spanning_execution()) == 1

    def test_queue_transfer_fraction(self):
        m = match_with(
            [make_transfer(start=0.0, end=83.0)],
            creation=0.0, start=100.0, end=200.0,
        )
        assert build_timeline(m).queue_transfer_fraction() == pytest.approx(0.83)


class TestCaseStudySelectors:
    def test_fig10_selector(self):
        good = match_with(
            [make_transfer(row_id=1, start=0.0, end=40.0),
             make_transfer(row_id=2, start=40.0, end=90.0)],
            creation=0.0, start=100.0, end=200.0,
        )
        out = find_high_staging_success([good], min_fraction=0.5)
        assert len(out) == 1
        assert out[0].queue_transfer_fraction() >= 0.5

    def test_fig10_excludes_failed(self):
        bad = match_with(
            [make_transfer(row_id=1, start=0.0, end=40.0),
             make_transfer(row_id=2, start=40.0, end=90.0)],
            creation=0.0, start=100.0, end=200.0, status="failed",
        )
        assert find_high_staging_success([bad]) == []

    def test_fig11_selector(self):
        failed = match_with(
            [make_transfer(start=50.0, end=1500.0)],
            creation=0.0, start=1000.0, end=2000.0, status="failed",
        )
        ok = match_with(
            [make_transfer(start=50.0, end=1500.0)],
            creation=0.0, start=1000.0, end=2000.0,
        )
        out = find_failed_with_overlap([failed, ok])
        assert [t.pandaid for t in out] == [failed.job.pandaid]

    def test_sequential_underutilized_selector(self):
        m = match_with([
            make_transfer(row_id=1, size=10000, start=0.0, end=1.0),
            make_transfer(row_id=2, size=10000, start=1.0, end=101.0),
        ])
        out = find_sequential_underutilized([m], min_spread=5.0)
        assert len(out) == 1
