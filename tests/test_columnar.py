"""Tests for the columnar engine (``repro.columnar``).

The contract under test is *bit-identical parity*: for any window —
including degraded ones with missing sites, zero ``jeditaskid``, and
duplicate LFNs or row ids — the vectorized kernels must return exactly
the row engine's ``matched_pairs()``, for every stock matcher, whether
executed serially or across processes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    DEFAULT_ENGINE,
    ENGINES,
    ColumnarIndex,
    StringInterner,
    supports_columnar,
    validate_engine,
)
from repro.columnar.packs import WindowColumns
from repro.core.matching.base import BaseMatcher, CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.core.matching.subset import SubsetMatcher
from repro.exec import ParallelExecutor, SerialExecutor, WindowPlan
from repro.metastore.opensearch import OpenSearchLike
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_file, make_job, make_transfer, matching_triple


KNOWN = {"SITE-A", "SITE-B"}


def all_matchers():
    return [
        ExactMatcher(KNOWN),
        RM1Matcher(KNOWN),
        RM2Matcher(KNOWN),
        RM2Matcher(set()),
        SubsetMatcher(KNOWN),
    ]


# -- interner ---------------------------------------------------------------------


class TestStringInterner:
    def test_codes_are_dense_and_stable(self):
        it = StringInterner()
        assert it.intern("a") == 0
        assert it.intern("b") == 1
        assert it.intern("a") == 0
        assert len(it) == 2
        assert it.decode(1) == "b"

    def test_encode_interns_unseen(self):
        it = StringInterner()
        codes = it.encode(["x", "y", "x"])
        assert codes.tolist() == [0, 1, 0]
        assert it.code_of("y") == 1
        assert it.code_of("never") == -1

    def test_container_protocol(self):
        it = StringInterner()
        it.intern("s")
        assert "s" in it and "t" not in it
        assert list(it) == ["s"]


# -- packs ------------------------------------------------------------------------


class TestPacks:
    def test_none_endtime_lowers_to_nan(self):
        cols = WindowColumns.lower([make_job(end=None)], [], [])
        assert np.isnan(cols.jobs.endtime[0])

    def test_take_gathers_rows(self):
        job, files, transfers = matching_triple()
        cols = WindowColumns.lower([job], files, transfers)
        rows = np.array([2, 0], dtype=np.int64)
        cut = cols.transfers.take(rows)
        assert cut.row_id.tolist() == [transfers[2].row_id, transfers[0].row_id]

    def test_take_full_selection_is_identity(self):
        job, files, transfers = matching_triple()
        cols = WindowColumns.lower([job], files, transfers)
        all_rows = np.arange(len(transfers), dtype=np.int64)
        assert cols.transfers.take(all_rows) is cols.transfers


# -- engine selection -------------------------------------------------------------


class TestEngineSelection:
    def test_validate_engine(self):
        assert set(ENGINES) == {"row", "columnar"}
        assert DEFAULT_ENGINE in ENGINES
        for e in ENGINES:
            assert validate_engine(e) == e
        with pytest.raises(ValueError):
            validate_engine("gpu")

    def test_stock_matchers_supported(self):
        for m in all_matchers():
            assert supports_columnar(m)

    def test_custom_site_ok_not_supported(self):
        class Weird(BaseMatcher):
            name = "weird"

            def site_ok(self, transfer, job):
                return True

        assert not supports_columnar(Weird())

    def test_run_rejects_unsupported_matcher(self):
        class Weird(BaseMatcher):
            name = "weird"

            def time_ok(self, transfer, job):
                return True

        job, files, transfers = matching_triple()
        index = ColumnarIndex([job], files, transfers)
        with pytest.raises(TypeError):
            index.run(Weird(), n_transfers_considered=0)


# -- parity -----------------------------------------------------------------------


def assert_engines_agree(jobs, files, transfers):
    """Row and columnar runs must be indistinguishable, per matcher."""
    row_index = CandidateIndex(files, transfers)
    col_index = ColumnarIndex(jobs, files, transfers)
    for matcher in all_matchers():
        row = matcher.run(jobs, row_index, n_transfers_considered=7)
        col = col_index.run(matcher, n_transfers_considered=7)
        assert col.matched_pairs() == row.matched_pairs()
        assert col.n_matched_jobs == row.n_matched_jobs
        assert col.n_matched_transfers == row.n_matched_transfers
        assert col.n_jobs_considered == row.n_jobs_considered
        assert col.n_transfers_considered == row.n_transfers_considered
        # full structure, including per-job transfer ordering
        assert [
            (m.job.pandaid, [t.row_id for t in m.transfers]) for m in col.matches
        ] == [
            (m.job.pandaid, [t.row_id for t in m.transfers]) for m in row.matches
        ]


SITES = st.sampled_from(["SITE-A", "SITE-B", "", UNKNOWN_SITE])
LFNS = st.sampled_from(["f0", "f1", "f2", "f3"])
TASKIDS = st.sampled_from([0, 100, 200])
SIZES = st.sampled_from([500, 1000])
DATASETS = st.sampled_from(["ds", "ds2"])


@st.composite
def degraded_windows(draw):
    """Small windows exercising the nasty cases: jobs with no endtime,
    zero/foreign task ids, blank and UNKNOWN sites, duplicate LFNs and
    duplicate transfer row ids."""
    jobs, files, transfers = [], [], []
    for i in range(draw(st.integers(1, 4))):
        tid = draw(TASKIDS)
        jobs.append(make_job(
            pandaid=i + 1,
            jeditaskid=tid,
            site=draw(SITES),
            end=draw(st.one_of(st.none(), st.floats(0.0, 5000.0, allow_nan=False))),
            nin=draw(st.sampled_from([0, 1000, 1500, 2000])),
            nout=draw(st.sampled_from([0, 1000])),
        ))
        for _ in range(draw(st.integers(0, 3))):
            files.append(make_file(
                pandaid=i + 1,
                jeditaskid=tid,
                lfn=draw(LFNS),
                dataset=draw(DATASETS),
                size=draw(SIZES),
            ))
    for _ in range(draw(st.integers(0, 10))):
        transfers.append(make_transfer(
            row_id=draw(st.integers(1, 8)),  # duplicates allowed
            lfn=draw(LFNS),
            dataset=draw(DATASETS),
            size=draw(SIZES),
            jeditaskid=draw(TASKIDS),
            src=draw(SITES),
            dst=draw(SITES),
            download=draw(st.booleans()),
            upload=draw(st.booleans()),
            start=draw(st.floats(0.0, 5000.0, allow_nan=False)),
        ))
    return jobs, files, transfers


class TestParity:
    def test_clean_triple(self):
        job, files, transfers = matching_triple()
        assert_engines_agree([job], files, transfers)

    def test_empty_window(self):
        assert_engines_agree([], [], [])

    def test_jobs_without_candidates(self):
        assert_engines_agree([make_job()], [], [make_transfer(jeditaskid=0)])

    @given(degraded_windows())
    @settings(max_examples=60, deadline=None)
    def test_degraded_windows(self, window):
        jobs, files, transfers = window
        assert_engines_agree(jobs, files, transfers)

    @given(degraded_windows())
    @settings(max_examples=40, deadline=None)
    def test_shared_interner_does_not_change_results(self, window):
        """Pre-warmed codes (ingest-time interning) are cosmetic."""
        jobs, files, transfers = window
        warm = StringInterner()
        for name in ("zzz", "SITE-B", UNKNOWN_SITE, "f2", ""):
            warm.intern(name)
        cold = ColumnarIndex(jobs, files, transfers)
        shared = ColumnarIndex(jobs, files, transfers, interner=warm)
        for matcher in all_matchers():
            assert (
                cold.run(matcher, n_transfers_considered=0).matched_pairs()
                == shared.run(matcher, n_transfers_considered=0).matched_pairs()
            )


def _ingest(jobs, files, transfers) -> OpenSearchLike:
    source = OpenSearchLike()
    source.jobs.ingest(jobs)
    source.files.ingest(files)
    source.transfers.ingest(transfers)
    source.store.freeze()
    source.warm_interner()
    return source


class TestMaterializeWindowFastPath:
    def test_matches_individual_queries(self):
        job, files, transfers = matching_triple()
        source = _ingest([job], files, transfers)
        t0, t1 = 0.0, 10_000.0
        jobs_f, files_f, transfers_f, cols = source.materialize_window(t0, t1)
        assert jobs_f == source.user_jobs_completed_in(t0, t1)
        assert transfers_f == source.transfers_started_in(t0, t1)
        assert files_f == source.files_of_jobs([j.pandaid for j in jobs_f])
        assert cols.transfers.row_id.tolist() == [t.row_id for t in transfers_f]

    def test_partial_window_gathers_subset(self):
        job, files, transfers = matching_triple()
        source = _ingest([job], files, transfers)
        _, _, transfers_f, cols = source.materialize_window(0.0, 101.5)
        assert len(transfers_f) == 2
        assert cols.transfers.row_id.tolist() == [t.row_id for t in transfers_f]

    def test_packs_rebuilt_after_ingest(self):
        job, files, transfers = matching_triple()
        source = _ingest([job], files, transfers)
        first = source.column_packs()
        assert source.column_packs() is first
        source.transfers.ingest([make_transfer(row_id=99, start=50.0)])
        second = source.column_packs()
        assert second is not first
        assert len(second.transfers) == len(first.transfers) + 1

    @given(degraded_windows())
    @settings(max_examples=40, deadline=None)
    def test_fast_path_parity_with_per_window_lowering(self, window):
        jobs, files, transfers = window
        source = _ingest(jobs, files, transfers)
        plan = WindowPlan(0.0, 10_000.0)
        serial = SerialExecutor(engine="columnar").execute(
            source, [plan], known_sites=KNOWN)[0]
        row = SerialExecutor(engine="row").execute(
            source, [plan], known_sites=KNOWN)[0]
        for m in serial.methods:
            assert serial[m].matched_pairs() == row[m].matched_pairs()


class TestExecutorParity:
    """Both engines, both executors, one seeded degraded source."""

    @given(degraded_windows())
    @settings(max_examples=5, deadline=None)
    def test_parallel_matches_serial_both_engines(self, window):
        jobs, files, transfers = window
        source = _ingest(jobs, files, transfers)
        plans = [WindowPlan(0.0, 2500.0), WindowPlan(0.0, 10_000.0)]
        baseline = None
        for engine in ENGINES:
            serial = SerialExecutor(engine=engine).execute(
                source, plans, known_sites=KNOWN)
            parallel = ParallelExecutor(workers=2, engine=engine).execute(
                source, plans, known_sites=KNOWN)
            pairs = [
                {m: rep[m].matched_pairs() for m in rep.methods} for rep in serial
            ]
            assert pairs == [
                {m: rep[m].matched_pairs() for m in rep.methods} for rep in parallel
            ]
            if baseline is None:
                baseline = pairs
            else:
                assert pairs == baseline
