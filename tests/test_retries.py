"""Tests for JEDI-style automatic retries of failed analysis jobs."""

import pytest

from repro.grid.presets import build_mini
from repro.panda.job import DataAccessMode, JobKind
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig


def run_harness(retry_limit: int, seed: int = 29) -> SimulationHarness:
    h = SimulationHarness(
        HarnessConfig(
            seed=seed,
            workload=WorkloadConfig(
                duration=12 * 3600.0,
                analysis_tasks_per_hour=8.0,
                production_tasks_per_hour=0.3,
                background_transfers_per_hour=10.0,
            ),
            drain=36 * 3600.0,
            retry_limit=retry_limit,
        ),
        topology=build_mini(seed=seed),
    )
    h.run()
    return h


class TestRetries:
    def test_disabled_by_default(self):
        h = run_harness(retry_limit=0)
        assert h.panda.retries_issued == 0

    def test_retries_issued_for_failed_analysis(self):
        h = run_harness(retry_limit=1)
        assert h.panda.retries_issued > 0

    def test_retry_shares_task_and_chunk(self):
        h = run_harness(retry_limit=1)
        attempts = h.panda._attempt
        assert attempts, "retry attempts must be tracked"
        for retry_pid in attempts:
            retry = h.panda.jobs[retry_pid]
            # same task has an earlier failed job with the same chunk
            originals = [
                j for j in h.panda.jobs.values()
                if j.jeditaskid == retry.jeditaskid
                and j.pandaid != retry_pid
                and j.input_file_dids == retry.input_file_dids
            ]
            assert originals, f"retry {retry_pid} has no original attempt"
            assert any(not o.succeeded for o in originals)

    def test_retry_pandaids_unique(self):
        h = run_harness(retry_limit=2)
        pids = [j.pandaid for j in h.panda.jobs.values()]
        assert len(pids) == len(set(pids))

    def test_retries_raise_success_of_work(self):
        """Per-task completion improves with retries: more tasks end up
        with every chunk eventually processed successfully."""
        def chunk_success_rate(h):
            ok = total = 0
            for task in h.panda.tasks.values():
                if task.kind is not JobKind.ANALYSIS:
                    continue
                chunks = {}
                for j in task.jobs:
                    key = tuple(j.input_file_dids)
                    chunks.setdefault(key, []).append(j)
                for js in chunks.values():
                    total += 1
                    if any(j.succeeded for j in js):
                        ok += 1
            return ok / total if total else 0.0

        without = chunk_success_rate(run_harness(retry_limit=0))
        with_retries = chunk_success_rate(run_harness(retry_limit=2))
        assert with_retries > without

    def test_production_never_retried(self):
        h = run_harness(retry_limit=2)
        for retry_pid in h.panda._attempt:
            assert h.panda.jobs[retry_pid].kind is JobKind.ANALYSIS

    def test_retry_pollutes_exact_matching_but_subset_recovers(self):
        """A retried copy job re-transfers the same files under the same
        jeditaskid: both attempts' candidates mix, the whole-set size
        check fails for both, and only subset selection untangles them
        — the real-ATLAS ambiguity the paper's Algorithm 1 inherits."""
        from repro.core.matching.base import CandidateIndex
        from repro.core.matching.exact import ExactMatcher
        from repro.core.matching.subset import SubsetMatcher
        from tests.helpers import make_file, make_job, make_transfer

        # attempt 1 (failed) and attempt 2 of the same chunk
        a1 = make_job(pandaid=1, end=1000.0, nin=2000)
        a2 = make_job(pandaid=2, creation=1500.0, start=2500.0, end=3500.0, nin=2000)
        files = lambda pid: [make_file(pandaid=pid, lfn=f"f{i}", size=1000)
                             for i in range(2)]
        transfers = [
            make_transfer(row_id=1, lfn="f0", size=1000, start=100.0, end=150.0),
            make_transfer(row_id=2, lfn="f1", size=1000, start=150.0, end=200.0),
            make_transfer(row_id=3, lfn="f0", size=1000, start=1600.0, end=1650.0),
            make_transfer(row_id=4, lfn="f1", size=1000, start=1650.0, end=1700.0),
        ]
        index = CandidateIndex(files(1) + files(2), transfers)

        exact = ExactMatcher().run([a1, a2], index, 4)
        # attempt 2 sees all four transfers -> S=4000 != 2000 -> unmatched;
        # attempt 1 only sees the pre-end pair -> matched.
        assert {m.job.pandaid for m in exact.matched_jobs()} == {1}

        subset = SubsetMatcher().run([a1, a2], index, 4)
        assert {m.job.pandaid for m in subset.matched_jobs()} == {1, 2}
