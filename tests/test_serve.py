"""Tests for the multi-tenant serving layer (``repro.serve``).

The load-bearing property mirrors the streaming suite's: every served
match/analysis response must be **bit-identical** to what the direct
batch path (:class:`MatchingPipeline` / :func:`run_analyses`) computes
for the same window — through the memo, through concurrent tenants,
and across a mid-run ``ingest_batch`` generation bump (a stale cache
entry must never be served).  Around that sit unit tests for the
building blocks — token buckets, admission, stride scheduling,
single-flight memoization, the reader-writer lock — and an asyncio
end-to-end pass with admission sheds and open-loop load.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.pipeline import MatchingPipeline
from repro.exec.analysis import run_analyses
from repro.exec.plan import WindowPlan
from repro.metastore.opensearch import OpenSearchLike
from repro.serve import (
    SHED_QUEUE,
    SHED_RATE,
    AdmissionController,
    AdmissionPolicy,
    AnalysisQuery,
    FairScheduler,
    LoadSpec,
    MatchQuery,
    MatchService,
    ResultMemo,
    RWLock,
    ServeConfig,
    TokenBucket,
    Workload,
    bit_identical,
    run_workload,
)

from tests.helpers import make_file, make_job, make_transfer

KNOWN_SITES = {"SITE-A", "SITE-B"}
T0, T1 = 0.0, 20_000.0


def _records(n: int = 24, base: int = 0, site_cycle=("SITE-A", "SITE-B")):
    """``n`` jobs with matching files/transfers spread over [T0, T1)."""
    jobs, files, transfers = [], [], []
    for i in range(n):
        pid = base + i + 1
        task = base + 1000 + i // 3
        site = site_cycle[i % len(site_cycle)]
        start = T0 + (T1 - T0) * (i + 0.5) / n
        jobs.append(make_job(
            pandaid=pid, jeditaskid=task, site=site,
            creation=start - 400.0, start=start, end=start + 600.0, nin=2000,
        ))
        for k in range(2):
            lfn = f"j{pid}.f{k}"
            files.append(make_file(
                pandaid=pid, jeditaskid=task, lfn=lfn,
                dataset=f"ds.{task}", proddblock=f"ds.{task}", size=1000,
            ))
            transfers.append(make_transfer(
                row_id=base * 10 + i * 2 + k + 1, lfn=lfn,
                dataset=f"ds.{task}", proddblock=f"ds.{task}", size=1000,
                src=site, dst=site, start=start - 300.0 + k, end=start - 100.0 + k,
                jeditaskid=task,
            ))
    return jobs, files, transfers


def _source(n: int = 24) -> OpenSearchLike:
    source = OpenSearchLike()
    jobs, files, transfers = _records(n)
    source.ingest_batch(jobs=jobs, files=files, transfers=transfers)
    return source


def _service(source=None, **config_kw) -> MatchService:
    return MatchService(
        source if source is not None else _source(),
        known_sites=KNOWN_SITES,
        tenants={"alpha": 2.0, "beta": 1.0},
        config=ServeConfig(max_workers=2, **config_kw),
    )


# -- token bucket -------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=lambda: clock[0])
        assert bucket.tokens == 3.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] += 100.0  # refill far past capacity
        assert bucket.tokens == 3.0

    def test_refills_at_rate(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: clock[0])
        for _ in range(4):
            assert bucket.try_acquire()
        clock[0] = 1.0  # 2 tokens back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


# -- admission ----------------------------------------------------------------


class TestAdmission:
    def test_queue_depth_shed(self):
        ctl = AdmissionController()
        ctl.register("t", AdmissionPolicy(queue_depth=2))
        assert ctl.admit("t", queued=1) is None
        assert ctl.admit("t", queued=2) == SHED_QUEUE
        assert ctl.shed_counts[SHED_QUEUE] == 1

    def test_rate_shed_and_recovery(self):
        clock = [0.0]
        ctl = AdmissionController(clock=lambda: clock[0])
        ctl.register("t", AdmissionPolicy(rate=1.0, burst=2.0))
        assert ctl.admit("t", 0) is None
        assert ctl.admit("t", 0) is None
        assert ctl.admit("t", 0) == SHED_RATE
        clock[0] = 1.0
        assert ctl.admit("t", 0) is None
        assert ctl.shed_counts[SHED_RATE] == 1

    def test_no_rate_limit_when_rate_none(self):
        ctl = AdmissionController()
        ctl.register("t", AdmissionPolicy(rate=None, queue_depth=1000))
        assert all(ctl.admit("t", 0) is None for _ in range(100))


# -- fair scheduler -----------------------------------------------------------


class TestFairScheduler:
    def test_weighted_proportions_under_backlog(self):
        sched = FairScheduler()
        sched.register("heavy", 3.0)
        sched.register("light", 1.0)
        for i in range(40):
            sched.push("heavy", f"h{i}")
            sched.push("light", f"l{i}")
        served = [sched.pop()[0] for _ in range(40)]
        assert served.count("heavy") == 30
        assert served.count("light") == 10

    def test_fifo_within_tenant(self):
        sched = FairScheduler()
        sched.register("t", 1.0)
        for i in range(5):
            sched.push("t", i)
        assert [sched.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_idle_tenant_cannot_hoard_credit(self):
        sched = FairScheduler()
        sched.register("busy", 1.0)
        sched.register("idle", 1.0)
        for i in range(20):
            sched.push("busy", i)
        for _ in range(10):
            sched.pop()
        # idle returns: its pass is clamped to the backlogged frontier,
        # so service alternates instead of draining idle's arrivals first.
        for i in range(10):
            sched.push("idle", i)
        first_four = [sched.pop()[0] for _ in range(4)]
        assert first_four.count("idle") == 2
        assert first_four.count("busy") == 2

    def test_empty_pop_and_depth(self):
        sched = FairScheduler()
        sched.register("t", 1.0)
        assert sched.pop() is None
        assert sched.depth("t") == 0
        assert len(sched) == 0

    def test_deterministic_tie_break(self):
        sched = FairScheduler()
        sched.register("b", 1.0)
        sched.register("a", 1.0)
        sched.push("b", 1)
        sched.push("a", 1)
        assert sched.pop()[0] == "a"  # name order on equal pass

    def test_rejects_nonpositive_weight(self):
        sched = FairScheduler()
        with pytest.raises(ValueError):
            sched.register("t", 0.0)


# -- result memo --------------------------------------------------------------


class TestResultMemo:
    def test_hit_returns_same_object(self):
        memo = ResultMemo()
        value, cached = memo.get_or_compute((1, "k"), lambda: object())
        assert not cached
        again, cached2 = memo.get_or_compute((1, "k"), lambda: object())
        assert cached2 and again is value

    def test_single_flight_under_threads(self):
        memo = ResultMemo()
        computes = []
        gate = threading.Event()

        def compute():
            computes.append(1)
            gate.wait(5.0)
            return "result"

        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(memo.get_or_compute, (1, "hot"), compute)
                for _ in range(8)
            ]
            while not computes:
                pass
            gate.set()
            results = [f.result() for f in futures]
        assert len(computes) == 1
        assert all(value == "result" for value, _ in results)
        assert sum(1 for _, cached in results if not cached) == 1

    def test_generation_eviction(self):
        memo = ResultMemo()
        memo.get_or_compute((1, "a"), lambda: "old")
        memo.get_or_compute((1, "b"), lambda: "old")
        memo.get_or_compute((2, "a"), lambda: "new")
        assert len(memo) == 1
        assert memo.stats["evictions"] == 2

    def test_lru_bound(self):
        memo = ResultMemo(max_entries=2)
        for k in range(4):
            memo.get_or_compute((1, k), lambda: k)
        assert len(memo) == 2
        # oldest evicted: recompute happens
        _, cached = memo.get_or_compute((1, 0), lambda: "again")
        assert not cached

    def test_failure_not_cached(self):
        memo = ResultMemo()

        def boom():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            memo.get_or_compute((1, "k"), boom)
        value, cached = memo.get_or_compute((1, "k"), lambda: "fine")
        assert value == "fine" and not cached


# -- reader-writer lock -------------------------------------------------------


class TestRWLock:
    def test_readers_are_concurrent(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read():
                inside.wait()  # all three readers in simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=0.2)
        assert order == []  # blocked behind the writer
        order.append("write")
        lock.release_write()
        t.join(timeout=5.0)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()
        got_read = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        def late_reader():
            with lock.read():
                got_read.set()

        tw = threading.Thread(target=writer)
        tw.start()
        while not lock._writers_waiting:
            pass
        tr = threading.Thread(target=late_reader)
        tr.start()
        tr.join(timeout=0.2)
        assert not got_read.is_set()  # writer preference holds it out
        lock.release_read()
        tw.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert got_write.is_set() and got_read.is_set()


# -- bit_identical ------------------------------------------------------------


class TestBitIdentical:
    def test_arrays_with_nan(self):
        a = np.array([1.0, np.nan])
        assert bit_identical(a, a.copy())
        assert not bit_identical(a, np.array([1.0, 2.0]))
        assert not bit_identical(a, a.astype(np.float32))

    def test_lazy_cache_fields_ignored(self):
        @dataclass
        class Holder:
            x: int
            _cache: object = field(default=None, compare=False)

        assert bit_identical(Holder(1, _cache="warm"), Holder(1))
        assert not bit_identical(Holder(1), Holder(2))

    def test_structures(self):
        assert bit_identical({"a": [1, (2.0, np.array([3]))]},
                             {"a": [1, (2.0, np.array([3]))]})
        assert not bit_identical({"a": 1}, {"b": 1})
        assert not bit_identical([1], (1,))
        assert bit_identical(float("nan"), float("nan"))


# -- synchronous service behaviour --------------------------------------------


class TestServiceSync:
    def test_match_bit_identical_to_pipeline(self):
        source = _source()
        service = _service(source)
        response = service.handle("alpha", MatchQuery(T0, T1))
        direct = MatchingPipeline(source, known_sites=KNOWN_SITES).run(T0, T1)
        assert response.ok
        assert bit_identical(response.value, direct)
        assert response.generation == source.generation

    def test_analysis_bit_identical_to_run_analyses(self):
        source = _source()
        service = _service(source)
        for spec in ("headline", "table1", "sites", "thresholds"):
            response = service.handle("alpha", AnalysisQuery(T0, T1, spec=spec))
            direct = run_analyses(
                source, WindowPlan(T0, T1), [spec], known_sites=KNOWN_SITES
            )[spec]
            assert bit_identical(response.value, direct), spec

    def test_repeat_query_is_memo_hit(self):
        service = _service()
        first = service.handle("alpha", MatchQuery(T0, T1))
        second = service.handle("beta", MatchQuery(T0, T1))
        assert not first.cached and second.cached
        assert second.value is first.value  # shared across tenants

    def test_analysis_shares_match_report(self):
        service = _service()
        service.handle("alpha", AnalysisQuery(T0, T1, spec="headline"))
        response = service.handle("beta", MatchQuery(T0, T1))
        assert response.cached  # the analysis already built this report

    def test_generation_bump_invalidates(self):
        source = _source()
        service = _service(source)
        before = service.handle("alpha", MatchQuery(T0, T1))
        jobs, files, transfers = _records(n=6, base=50_000)
        service.ingest(jobs=jobs, files=files, transfers=transfers)
        after = service.handle("alpha", MatchQuery(T0, T1))
        assert after.generation > before.generation
        assert not after.cached  # stale entry was not served
        assert after.value.n_jobs > before.value.n_jobs
        direct = MatchingPipeline(source, known_sites=KNOWN_SITES).run(T0, T1)
        assert bit_identical(after.value, direct)

    def test_verification_sampling_counts(self):
        service = _service(verify_every=2)
        for _ in range(4):
            service.handle("alpha", MatchQuery(T0, T1 / 2))
        assert service.verify_samples == 2
        assert service.verify_violations == 0

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            AnalysisQuery(T0, T1, spec="nope")

    def test_unknown_matcher_rejected(self):
        service = _service()
        with pytest.raises(ValueError):
            service.handle("alpha", MatchQuery(T0, T1, methods=("exact", "nope")))

    def test_matrix_analysis_serves(self):
        source = _source()
        service = _service(source)
        response = service.handle("alpha", AnalysisQuery(T0, T1, spec="matrix"))
        assert response.ok
        direct = service._direct(AnalysisQuery(T0, T1, spec="matrix"))
        assert bit_identical(response.value, direct)


# -- hypothesis: served == direct, including across generation bumps ----------


@st.composite
def windows(draw):
    # strictly positive width: the time-profile analyses reject empty
    # windows by contract
    start = draw(st.floats(min_value=T0, max_value=T1 - 10.0, allow_nan=False))
    width = draw(st.floats(min_value=10.0, max_value=T1 - start, allow_nan=False))
    return (start, start + width)


class TestServedParity:
    @settings(max_examples=15, deadline=None)
    @given(window=windows(), user_only=st.booleans())
    def test_match_parity(self, window, user_only):
        t0, t1 = window
        source = _source()
        service = _service(source)
        response = service.handle(
            "alpha", MatchQuery(t0, t1, user_jobs_only=user_only)
        )
        direct = MatchingPipeline(
            source, known_sites=KNOWN_SITES, user_jobs_only=user_only
        ).run(t0, t1)
        assert bit_identical(response.value, direct)

    @settings(max_examples=15, deadline=None)
    @given(
        window=windows(),
        spec=st.sampled_from(["headline", "table1", "table2_jobs", "sites",
                              "volume", "submissions"]),
        method=st.sampled_from(["exact", "rm1", "rm2"]),
    )
    def test_analysis_parity(self, window, spec, method):
        t0, t1 = window
        source = _source()
        service = _service(source)
        response = service.handle(
            "alpha", AnalysisQuery(t0, t1, spec=spec, method=method)
        )
        from repro.exec.analysis import AnalysisSpec

        direct = run_analyses(
            source,
            WindowPlan(t0, t1),
            [AnalysisSpec(name=spec, method=method)],
            known_sites=KNOWN_SITES,
        )[spec]
        assert bit_identical(response.value, direct), (spec, method)

    @settings(max_examples=10, deadline=None)
    @given(window=windows(), extra=st.integers(min_value=1, max_value=8))
    def test_parity_across_generation_bump(self, window, extra):
        t0, t1 = window
        source = _source()
        service = _service(source)
        before = service.handle("alpha", MatchQuery(t0, t1))
        pre_direct = MatchingPipeline(source, known_sites=KNOWN_SITES).run(t0, t1)
        assert bit_identical(before.value, pre_direct)

        jobs, files, transfers = _records(n=extra, base=90_000)
        service.ingest(jobs=jobs, files=files, transfers=transfers)

        after = service.handle("alpha", MatchQuery(t0, t1))
        post_direct = MatchingPipeline(source, known_sites=KNOWN_SITES).run(t0, t1)
        assert after.generation == source.generation
        assert bit_identical(after.value, post_direct)
        # and the pre-bump response still matches its own snapshot, not
        # the new one, whenever the bump changed this window
        if not bit_identical(pre_direct, post_direct):
            assert not bit_identical(after.value, before.value)


# -- asyncio end-to-end -------------------------------------------------------


class TestServiceAsync:
    def test_submit_roundtrip_and_parity(self):
        source = _source()
        service = _service(source)
        direct = MatchingPipeline(source, known_sites=KNOWN_SITES).run(T0, T1)

        async def main():
            async with service:
                responses = await asyncio.gather(*[
                    service.submit(
                        "alpha" if i % 2 else "beta", MatchQuery(T0, T1)
                    )
                    for i in range(12)
                ])
            return responses

        responses = asyncio.run(main())
        assert all(r.ok for r in responses)
        assert all(bit_identical(r.value, direct) for r in responses)
        assert sum(1 for r in responses if r.cached) >= 11

    def test_rate_limit_sheds_with_reason(self):
        service = MatchService(
            _source(),
            known_sites=KNOWN_SITES,
            tenants={"alpha": 1.0},
            config=ServeConfig(
                max_workers=2,
                policy=AdmissionPolicy(rate=0.001, burst=2.0, queue_depth=64),
            ),
        )

        async def main():
            async with service:
                return await asyncio.gather(*[
                    service.submit("alpha", MatchQuery(T0, T1 / 4))
                    for _ in range(8)
                ])

        responses = asyncio.run(main())
        ok = [r for r in responses if r.ok]
        shed = [r for r in responses if r.status == "shed"]
        assert len(ok) == 2  # the burst
        assert len(shed) == 6
        assert all(r.reason == SHED_RATE for r in shed)
        assert service.admission.shed_counts[SHED_RATE] == 6

    def test_queue_bound_sheds(self):
        service = MatchService(
            _source(),
            known_sites=KNOWN_SITES,
            tenants={"alpha": 1.0},
            config=ServeConfig(
                max_workers=1,
                policy=AdmissionPolicy(queue_depth=2),
            ),
        )

        async def main():
            async with service:
                # submit without yielding: queue fills before dispatch
                futures = [
                    asyncio.ensure_future(
                        service.submit("alpha", MatchQuery(T0, T1))
                    )
                    for _ in range(10)
                ]
                return await asyncio.gather(*futures)

        responses = asyncio.run(main())
        assert any(r.status == "shed" and r.reason == SHED_QUEUE for r in responses)
        assert all(r.ok or r.reason == SHED_QUEUE for r in responses)

    def test_ingest_under_load_keeps_parity(self):
        source = _source()
        service = MatchService(
            source,
            known_sites=KNOWN_SITES,
            tenants={"alpha": 2.0, "beta": 1.0},
            config=ServeConfig(max_workers=2, verify_every=3),
        )
        spec = LoadSpec.make(
            {"alpha": 2.0, "beta": 1.0}, rate=300.0, duration=0.4, seed=13
        )
        workload = Workload(spec, T0, T1)

        async def main():
            async with service:
                return await run_workload(
                    service,
                    workload.schedule(),
                    ingest_at=0.2,
                    ingest_batch=_records(n=6, base=70_000),
                )

        stats = asyncio.run(main())
        assert stats.completed > 0
        assert stats.errors == 0
        assert service.verify_samples > 0
        assert service.verify_violations == 0
        assert service.source.generation > 1  # the bump really happened


# -- load generator -----------------------------------------------------------


class TestLoadgen:
    def test_schedule_is_deterministic(self):
        spec = LoadSpec.make({"a": 1.0, "b": 2.0}, rate=100.0, duration=1.0, seed=5)
        one = Workload(spec, T0, T1).schedule()
        two = Workload(spec, T0, T1).schedule()
        assert [(a.at, a.tenant, a.query) for a in one] == \
               [(a.at, a.tenant, a.query) for a in two]
        assert all(one[i].at <= one[i + 1].at for i in range(len(one) - 1))

    def test_weights_shape_the_mix(self):
        spec = LoadSpec.make({"heavy": 9.0, "light": 1.0},
                             rate=400.0, duration=2.0, seed=5)
        arrivals = Workload(spec, T0, T1).schedule()
        heavy = sum(1 for a in arrivals if a.tenant == "heavy")
        assert heavy / len(arrivals) > 0.8

    def test_long_fraction_and_ramp(self):
        spec = LoadSpec.make(
            {"a": 1.0}, ramp=((50.0, 1.0), (200.0, 1.0)),
            long_fraction=1.0, seed=5,
        )
        workload = Workload(spec, T0, T1)
        arrivals = workload.schedule()
        # every query is a full-window analysis when long_fraction=1
        assert all(
            isinstance(a.query, AnalysisQuery) and a.query.t1 == T1
            for a in arrivals
        )
        first = sum(1 for a in arrivals if a.at < 1.0)
        second = len(arrivals) - first
        assert second > first * 2  # the ramp's second segment is denser
