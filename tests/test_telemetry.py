"""Tests for telemetry records, ground truth, collector, and degradation."""

import numpy as np
import pytest

from repro.panda.job import JobKind
from repro.rucio.activities import TransferActivity
from repro.rucio.transfer import TransferEvent
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.degradation import DegradationConfig, MetadataDegrader
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.records import UNKNOWN_SITE, TransferRecord

from tests.helpers import make_transfer


def event(**kw) -> TransferEvent:
    defaults = dict(
        transfer_id=kw.pop("transfer_id", 1),
        lfn="f1", scope="user.x", dataset="ds", proddblock="ds",
        file_size=1000, source_rse="A_DATADISK", dest_rse="B_DATADISK",
        source_site="A", destination_site="B",
        activity=TransferActivity.ANALYSIS_DOWNLOAD,
        submitted_at=0.0, starttime=1.0, endtime=2.0,
        pandaid=5, jeditaskid=9,
    )
    defaults.update(kw)
    return TransferEvent(**defaults)


class TestTransferRecordProperties:
    def test_local_requires_known_equal_sites(self):
        assert make_transfer(src="A", dst="A").is_local
        assert not make_transfer(src="A", dst="B").is_local
        assert not make_transfer(src=UNKNOWN_SITE, dst=UNKNOWN_SITE).is_local

    def test_unknown_detection(self):
        assert make_transfer(dst=UNKNOWN_SITE).has_unknown_site
        assert make_transfer(src="").has_unknown_site
        assert not make_transfer().has_unknown_site

    def test_taskid_flag(self):
        assert make_transfer(jeditaskid=5).has_jeditaskid
        assert not make_transfer(jeditaskid=0).has_jeditaskid


class TestGroundTruth:
    def test_link_and_lookup(self):
        gt = GroundTruth()
        gt.link(10, 5, "A", "B")
        assert gt.true_job_of(10) == 5
        assert gt.true_transfers_of(5) == {10}
        assert gt.true_sites[10] == ("A", "B")

    def test_background_not_indexed_by_job(self):
        gt = GroundTruth()
        gt.link(10, 0)
        assert gt.true_job_of(10) == 0
        assert gt.n_job_driven_transfers == 0

    def test_double_link_rejected(self):
        gt = GroundTruth()
        gt.link(10, 5)
        with pytest.raises(ValueError):
            gt.link(10, 6)

    def test_unknown_transfer_returns_zero(self):
        assert GroundTruth().true_job_of(99) == 0


class TestDegradation:
    def _degrader(self, **cfg_kw) -> MetadataDegrader:
        cfg = DegradationConfig(**cfg_kw)
        return MetadataDegrader(cfg, np.random.default_rng(0))

    def test_clean_config_preserves_event(self):
        d = self._degrader(
            p_drop_transfer=0.0, p_drop_file=0.0,
            p_drop_jeditaskid={}, p_unknown_destination={}, p_unknown_source={},
            p_size_imprecise={}, p_drop_jeditaskid_default=0.0,
            round_timestamps=False,
        )
        ev = event()
        rec = d.degrade_transfer(ev)
        assert rec is not None
        assert rec.file_size == ev.file_size
        assert rec.destination_site == "B"
        assert rec.jeditaskid == 9
        assert rec.row_id == ev.transfer_id

    def test_drop_transfer(self):
        d = self._degrader(p_drop_transfer=1.0)
        assert d.degrade_transfer(event()) is None

    def test_unknown_destination(self):
        # p_unknown_source pinned to zero: the draws are independent, so
        # the default source rate would otherwise fire on its own.
        d = self._degrader(
            p_drop_transfer=0.0,
            p_unknown_destination={TransferActivity.ANALYSIS_DOWNLOAD: 1.0},
            p_unknown_source={},
        )
        rec = d.degrade_transfer(event())
        assert rec.destination_site == UNKNOWN_SITE
        assert rec.source_site == "A"

    def test_taskid_dropped(self):
        d = self._degrader(
            p_drop_transfer=0.0,
            p_drop_jeditaskid={TransferActivity.ANALYSIS_DOWNLOAD: 1.0},
        )
        assert d.degrade_transfer(event()).jeditaskid == 0

    def test_size_imprecision_changes_size(self):
        d = self._degrader(
            p_drop_transfer=0.0,
            p_size_imprecise={TransferActivity.ANALYSIS_DOWNLOAD: 1.0},
        )
        recs = [d.degrade_transfer(event(transfer_id=i)) for i in range(20)]
        assert all(r.file_size != 1000 for r in recs)

    def test_directio_partial_read_smaller(self):
        d = self._degrader(
            p_drop_transfer=0.0,
            p_size_imprecise={TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO: 1.0},
        )
        ev = event(activity=TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO, file_size=10**9)
        recs = [d.degrade_transfer(event(
            transfer_id=i, activity=TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
            file_size=10**9)) for i in range(10)]
        assert all(r.file_size < 10**9 for r in recs)

    def test_production_block_rewritten(self):
        d = self._degrader(p_drop_transfer=0.0)
        ev = event(activity=TransferActivity.PRODUCTION_UPLOAD, proddblock="ds_sub000")
        rec = d.degrade_transfer(ev)
        assert rec.proddblock != "ds_sub000"
        assert rec.proddblock.startswith("ds")

    def test_analysis_block_untouched(self):
        d = self._degrader(p_drop_transfer=0.0, p_size_imprecise={})
        rec = d.degrade_transfer(event())
        assert rec.proddblock == "ds"

    def test_timestamps_rounded(self):
        d = self._degrader(p_drop_transfer=0.0, round_timestamps=True)
        rec = d.degrade_transfer(event(starttime=1.4, endtime=2.6))
        assert rec.starttime == 1.0 and rec.endtime == 3.0

    def test_unknown_site_draws_are_independent(self):
        # Regression: the old if/elif made source corruption conditional
        # on the destination surviving, deflating the source-unknown
        # rate to p_src * (1 - p_dst) and making both-unknown records
        # impossible.
        d = self._degrader(
            p_drop_transfer=0.0,
            p_unknown_destination={TransferActivity.ANALYSIS_DOWNLOAD: 0.5},
            p_unknown_source={TransferActivity.ANALYSIS_DOWNLOAD: 0.5},
        )
        recs = [d.degrade_transfer(event(transfer_id=i)) for i in range(2000)]
        src_rate = sum(r.source_site == UNKNOWN_SITE for r in recs) / len(recs)
        dst_rate = sum(r.destination_site == UNKNOWN_SITE for r in recs) / len(recs)
        n_both = sum(
            r.source_site == UNKNOWN_SITE and r.destination_site == UNKNOWN_SITE
            for r in recs
        )
        assert 0.45 < src_rate < 0.55  # was ~0.25 under the elif
        assert 0.45 < dst_rate < 0.55
        assert n_both > 0  # impossible before the fix

    def test_both_sites_unknown_at_certainty(self):
        d = self._degrader(
            p_drop_transfer=0.0,
            p_unknown_destination={TransferActivity.ANALYSIS_DOWNLOAD: 1.0},
            p_unknown_source={TransferActivity.ANALYSIS_DOWNLOAD: 1.0},
        )
        rec = d.degrade_transfer(event())
        assert rec.destination_site == UNKNOWN_SITE
        assert rec.source_site == UNKNOWN_SITE


class TestDegradedTelemetryOnStudy:
    def test_row_ids_unique(self, small_telemetry):
        ids = [t.row_id for t in small_telemetry.transfers]
        assert len(ids) == len(set(ids))

    def test_ground_truth_covers_all_records(self, small_telemetry):
        gt = small_telemetry.ground_truth
        for t in small_telemetry.transfers:
            assert t.row_id in gt.transfer_to_job

    def test_job_records_match_jobs(self, small_study, small_telemetry):
        assert len(small_telemetry.jobs) == small_study.harness.collector.n_jobs

    def test_background_majority_lacks_taskid(self, small_telemetry):
        frac = small_telemetry.n_transfers_with_taskid / len(small_telemetry.transfers)
        assert frac < 0.8  # most transfers are unmatched background mass

    def test_taskid_count_is_cached(self, small_telemetry):
        n = small_telemetry.n_transfers_with_taskid
        # cached_property stores the computed value on the instance.
        assert small_telemetry.__dict__["n_transfers_with_taskid"] == n
        assert small_telemetry.n_transfers_with_taskid == n

    def test_file_records_have_types(self, small_telemetry):
        kinds = {f.ftype for f in small_telemetry.files}
        assert kinds <= {"input", "output"}
        assert "input" in kinds

    def test_prodsourcelabel_values(self, small_telemetry):
        labels = {j.prodsourcelabel for j in small_telemetry.jobs}
        assert labels <= {"user", "managed"}

    def test_unknown_sites_injected(self, small_telemetry):
        assert any(t.destination_site == UNKNOWN_SITE for t in small_telemetry.transfers)


class TestCollectorWindows:
    def test_window_filters(self, small_study):
        c = small_study.harness.collector
        t0, t1 = small_study.harness.window
        mid = (t0 + t1) / 2
        early = c.transfers_in_window(t0, mid)
        late = c.transfers_in_window(mid, t1)
        assert len(early) + len(late) <= c.n_transfers
        assert all(e.starttime < mid for e in early)

    def test_double_done_rejected(self, small_study):
        c = small_study.harness.collector
        job = c.completed_jobs[0]
        with pytest.raises(ValueError):
            c.on_job_done(job)
