"""Tests for the discrete-event kernel (clock, engine, tracing)."""

import datetime

import pytest

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, StopSimulation
from repro.sim.tracing import TraceLog


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        c = SimClock()
        c.advance_to(10.0)
        assert c.now == 10.0

    def test_rejects_backwards(self):
        c = SimClock()
        c.advance_to(5.0)
        with pytest.raises(ValueError):
            c.advance_to(4.0)

    def test_datetime_anchor(self):
        c = SimClock(epoch=datetime.datetime(2025, 4, 1))
        c.advance_to(86400.0)
        assert c.to_datetime() == datetime.datetime(2025, 4, 2)

    def test_hour_of_day(self):
        c = SimClock(epoch=datetime.datetime(2025, 4, 1, 0, 0, 0))
        assert c.hour_of_day(3600.0 * 15.5) == pytest.approx(15.5)


class TestEngineScheduling:
    def test_executes_in_time_order(self):
        e = Engine()
        order = []
        e.schedule_at(5.0, lambda: order.append("b"))
        e.schedule_at(1.0, lambda: order.append("a"))
        e.run()
        assert order == ["a", "b"]

    def test_fifo_for_simultaneous_events(self):
        e = Engine()
        order = []
        for i in range(10):
            e.schedule_at(1.0, lambda i=i: order.append(i))
        e.run()
        assert order == list(range(10))

    def test_clock_advances_with_events(self):
        e = Engine()
        seen = []
        e.schedule_at(3.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [3.0]

    def test_rejects_past_scheduling(self):
        e = Engine()
        e.schedule_at(2.0, lambda: None)
        e.run()
        with pytest.raises(ValueError):
            e.schedule_at(1.0, lambda: None)

    def test_rejects_negative_delay(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.schedule_in(-1.0, lambda: None)

    def test_schedule_in_is_relative(self):
        e = Engine()
        times = []
        e.schedule_at(10.0, lambda: e.schedule_in(5.0, lambda: times.append(e.now)))
        e.run()
        assert times == [15.0]


class TestEngineCancellation:
    def test_cancelled_event_not_run(self):
        e = Engine()
        hits = []
        ev = e.schedule_at(1.0, lambda: hits.append(1))
        ev.cancel()
        e.run()
        assert hits == []

    def test_pending_ignores_cancelled(self):
        e = Engine()
        ev = e.schedule_at(1.0, lambda: None)
        e.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert e.pending() == 1

    def test_peek_skips_cancelled(self):
        e = Engine()
        ev = e.schedule_at(1.0, lambda: None)
        e.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert e.peek_time() == 2.0


class TestEngineRun:
    def test_until_horizon_executes_boundary(self):
        e = Engine()
        hits = []
        e.schedule_at(5.0, lambda: hits.append("on"))
        e.schedule_at(5.1, lambda: hits.append("after"))
        e.run(until=5.0)
        assert hits == ["on"]
        assert e.now == 5.0

    def test_clock_lands_on_horizon_without_events(self):
        e = Engine()
        e.run(until=100.0)
        assert e.now == 100.0

    def test_max_events_budget(self):
        e = Engine()
        hits = []
        for i in range(10):
            e.schedule_at(float(i), lambda: hits.append(1))
        e.run(max_events=3)
        assert len(hits) == 3

    def test_stop_simulation(self):
        e = Engine()
        hits = []

        def boom():
            raise StopSimulation()

        e.schedule_at(1.0, lambda: hits.append(1))
        e.schedule_at(2.0, boom)
        e.schedule_at(3.0, lambda: hits.append(3))
        e.run()
        assert hits == [1]

    def test_events_scheduled_during_run(self):
        e = Engine()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                e.schedule_in(1.0, lambda: chain(n + 1))

        e.schedule_at(0.0, lambda: chain(0))
        e.run()
        assert hits == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_executed_counter(self):
        e = Engine()
        for i in range(4):
            e.schedule_at(float(i), lambda: None)
        e.run()
        assert e.events_executed == 4


class TestTraceLog:
    def test_emit_and_filter(self):
        t = TraceLog()
        t.emit(1.0, "a.kind", "x")
        t.emit(2.0, "b.kind", "y", extra=1)
        assert len(t) == 2
        assert len(t.by_kind("a.kind")) == 1
        assert t.by_subject("y")[0].detail == {"extra": 1}

    def test_disabled_is_noop(self):
        t = TraceLog(enabled=False)
        t.emit(1.0, "k", "s")
        assert len(t) == 0

    def test_capacity_drops_oldest(self):
        t = TraceLog(capacity=10)
        for i in range(25):
            t.emit(float(i), "k", str(i))
        assert len(t) <= 10
        assert t.dropped > 0
        # the newest record is retained
        assert list(t)[-1].subject == "24"

    def test_kinds_histogram(self):
        t = TraceLog()
        t.emit(0, "a", "s")
        t.emit(1, "a", "s")
        t.emit(2, "b", "s")
        assert t.kinds() == {"a": 2, "b": 1}

    def test_str_rendering(self):
        t = TraceLog()
        t.emit(1.5, "job.start", "42", site="X")
        assert "job.start" in str(list(t)[0])
