"""Tests for iDDS-style fine-grained delivery and production data-wait."""

from typing import List

import numpy as np
import pytest

from repro.grid.presets import build_mini
from repro.grid.rse import RseKind, rse_name
from repro.idds.delivery import DeliveryPlan, DeliveryService
from repro.ids import IdFactory
from repro.rucio.catalog import DidCatalog
from repro.rucio.did import DID, FileDid
from repro.rucio.replica import ReplicaRegistry
from repro.sim.engine import Engine


class Rig:
    def __init__(self, seed: int = 1):
        self.engine = Engine()
        self.topo = build_mini(seed=seed)
        self.ids = IdFactory()
        self.catalog = DidCatalog()
        self.replicas = ReplicaRegistry(self.topo)
        self.delivery = DeliveryService(self.engine, self.replicas, poll_interval=60.0)

    def files(self, n: int, site: str = "") -> List[FileDid]:
        out = []
        for _ in range(n):
            f = FileDid(did=DID("mc", self.ids.make_lfn("mc")), size=100)
            self.catalog.register_file(f)
            if site:
                self.replicas.add(f.did, rse_name(site, RseKind.DATADISK), 100)
            out.append(f)
        return out


class TestDeliveryService:
    def test_available_chunks_release_immediately(self):
        rig = Rig()
        chunks = [rig.files(2, site="BNL-ATLAS"), rig.files(2, site="BNL-ATLAS")]
        released = []
        rig.delivery.submit(DeliveryPlan(
            jeditaskid=1, site="BNL-ATLAS", chunks=chunks,
            on_chunk_ready=lambda i, c: released.append(i)))
        rig.engine.run(until=1.0)
        assert sorted(released) == [0, 1]
        assert rig.delivery.active_tasks() == []

    def test_chunk_released_when_data_lands(self):
        rig = Rig()
        ready = rig.files(1, site="BNL-ATLAS")
        pending = rig.files(1)  # nowhere yet
        released = []
        rig.delivery.submit(DeliveryPlan(
            jeditaskid=1, site="BNL-ATLAS", chunks=[ready, pending],
            on_chunk_ready=lambda i, c: released.append((rig.engine.now, i))))
        # land the pending file at t=500
        rig.engine.schedule_at(500.0, lambda: rig.replicas.add(
            pending[0].did, "BNL-ATLAS_DATADISK", 100))
        rig.engine.run(until=1000.0)
        times = dict((i, t) for t, i in released)
        assert 0 in times and times[0] < 100.0
        assert 1 in times and times[1] >= 500.0

    def test_release_order_follows_data_not_submission(self):
        rig = Rig()
        late = rig.files(1)
        early = rig.files(1)
        released = []
        rig.delivery.submit(DeliveryPlan(
            jeditaskid=1, site="BNL-ATLAS", chunks=[late, early],
            on_chunk_ready=lambda i, c: released.append(i)))
        rig.engine.schedule_at(100.0, lambda: rig.replicas.add(
            early[0].did, "BNL-ATLAS_DATADISK", 100))
        rig.engine.schedule_at(900.0, lambda: rig.replicas.add(
            late[0].did, "BNL-ATLAS_DATADISK", 100))
        rig.engine.run(until=2000.0)
        assert released == [1, 0]

    def test_give_up_releases_stragglers(self):
        rig = Rig()
        rig.delivery.give_up_after = 1000.0
        stuck = rig.files(1)  # never lands
        released = []
        rig.delivery.submit(DeliveryPlan(
            jeditaskid=1, site="BNL-ATLAS", chunks=[stuck],
            on_chunk_ready=lambda i, c: released.append(i)))
        rig.engine.run(until=5000.0)
        assert released == [0]
        assert rig.delivery.n_abandoned == 1
        assert rig.delivery.active_tasks() == []

    def test_duplicate_plan_rejected(self):
        rig = Rig()
        # First plan stays pending (its file never lands anywhere).
        plan = DeliveryPlan(jeditaskid=1, site="BNL-ATLAS",
                            chunks=[rig.files(1)],
                            on_chunk_ready=lambda i, c: None)
        rig.delivery.submit(plan)
        with pytest.raises(ValueError):
            rig.delivery.submit(DeliveryPlan(
                jeditaskid=1, site="BNL-ATLAS",
                chunks=[rig.files(1)], on_chunk_ready=lambda i, c: None))

    def test_empty_plan_rejected(self):
        rig = Rig()
        with pytest.raises(ValueError):
            rig.delivery.submit(DeliveryPlan(
                jeditaskid=1, site="BNL-ATLAS", chunks=[],
                on_chunk_ready=lambda i, c: None))


class TestIddsCampaign:
    """End-to-end: a harness with use_idds=True runs production via delivery."""

    def _harness(self, use_idds: bool):
        from repro.grid.presets import build_mini
        from repro.scenarios.runtime import HarnessConfig, SimulationHarness
        from repro.workload.generator import WorkloadConfig

        cfg = HarnessConfig(
            seed=5,
            workload=WorkloadConfig(
                duration=12 * 3600.0,
                analysis_tasks_per_hour=1.0,
                production_tasks_per_hour=1.5,
                background_transfers_per_hour=5.0,
                production_tape_fraction=1.0,
                use_idds=use_idds,
            ),
            drain=36 * 3600.0,
        )
        return SimulationHarness(cfg, topology=build_mini(seed=5))

    def test_idds_campaign_completes_production(self):
        h = self._harness(use_idds=True).run()
        from repro.panda.job import JobKind
        prod = [j for j in h.collector.completed_jobs if j.kind is JobKind.PRODUCTION]
        assert prod, "production jobs must complete under iDDS delivery"
        assert h.delivery.n_released_total > 0

    def test_fixed_lead_campaign_also_completes(self):
        h = self._harness(use_idds=False).run()
        from repro.panda.job import JobKind
        prod = [j for j in h.collector.completed_jobs if j.kind is JobKind.PRODUCTION]
        assert prod
        assert h.delivery.n_released_total == 0

    def test_idds_improves_task_makespan(self):
        """The §6 iDDS claim: fine-grained delivery trims long tails.

        The comparable end-to-end quantity is the task *makespan*
        (task registration → last job completion): the fixed staging
        lead delays every job by hours even when its chunk is already
        on disk, while delivery releases it immediately.
        """
        import numpy as np
        from repro.panda.job import JobKind

        def mean_makespan(h):
            spans = []
            for task in h.panda.tasks.values():
                if task.kind is not JobKind.PRODUCTION or not task.jobs:
                    continue
                ends = [j.end_time for j in task.jobs if j.end_time is not None]
                if ends:
                    spans.append(max(ends) - task.created_at)
            return float(np.mean(spans)) if spans else 0.0

        fixed = mean_makespan(self._harness(use_idds=False).run())
        idds = mean_makespan(self._harness(use_idds=True).run())
        assert idds <= fixed
