"""Tests for transfer activities and event records."""

import pytest

from repro.rucio.activities import TABLE1_ORDER, TransferActivity
from repro.rucio.transfer import TransferEvent, TransferRequest
from repro.rucio.did import DID


class TestActivityTaxonomy:
    @pytest.mark.parametrize("act", [
        TransferActivity.ANALYSIS_DOWNLOAD,
        TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
        TransferActivity.PRODUCTION_DOWNLOAD,
    ])
    def test_downloads(self, act):
        assert act.is_download and not act.is_upload

    @pytest.mark.parametrize("act", [
        TransferActivity.ANALYSIS_UPLOAD,
        TransferActivity.PRODUCTION_UPLOAD,
    ])
    def test_uploads(self, act):
        assert act.is_upload and not act.is_download

    def test_background_neither(self):
        for act in (TransferActivity.DATA_REBALANCING, TransferActivity.DATA_CONSOLIDATION):
            assert not act.is_download and not act.is_upload
            assert not act.is_job_driven

    def test_direct_io_overlaps_execution(self):
        assert TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO.overlaps_execution
        assert not TransferActivity.ANALYSIS_DOWNLOAD.overlaps_execution

    def test_production_flags(self):
        assert TransferActivity.PRODUCTION_UPLOAD.is_production
        assert not TransferActivity.PRODUCTION_UPLOAD.is_analysis

    def test_table1_order_matches_paper(self):
        assert [a.value for a in TABLE1_ORDER] == [
            "Analysis Download",
            "Analysis Upload",
            "Analysis Download Direct IO",
            "Production Upload",
            "Production Download",
        ]


def make_event(**kw) -> TransferEvent:
    defaults = dict(
        transfer_id=1, lfn="f", scope="s", dataset="ds", proddblock="ds",
        file_size=1000, source_rse="A_DATADISK", dest_rse="B_DATADISK",
        source_site="A", destination_site="B",
        activity=TransferActivity.ANALYSIS_DOWNLOAD,
        submitted_at=0.0, starttime=10.0, endtime=110.0,
    )
    defaults.update(kw)
    return TransferEvent(**defaults)


class TestTransferEvent:
    def test_derived_metrics(self):
        ev = make_event()
        assert ev.duration == 100.0
        assert ev.queue_wait == 10.0
        assert ev.throughput == pytest.approx(10.0)

    def test_local_detection(self):
        assert make_event(source_site="A", destination_site="A").is_local
        assert not make_event().is_local

    def test_direction_flags(self):
        assert make_event().is_download
        up = make_event(activity=TransferActivity.ANALYSIS_UPLOAD)
        assert up.is_upload

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            make_event(endtime=5.0)
        with pytest.raises(ValueError):
            make_event(starttime=-1.0, endtime=5.0)

    def test_zero_duration_throughput(self):
        ev = make_event(starttime=10.0, endtime=10.0)
        assert ev.throughput == 0.0


class TestTransferRequest:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferRequest(
                request_id=1, file_did=DID("s", "f"), size=-1,
                dest_rse="X", activity=TransferActivity.DATA_REBALANCING,
            )

    def test_defaults(self):
        req = TransferRequest(
            request_id=1, file_did=DID("s", "f"), size=10,
            dest_rse="X", activity=TransferActivity.DATA_REBALANCING,
        )
        assert req.pandaid == 0 and not req.ephemeral and req.source_rse is None
