"""Tests for co-optimization: awareness, broker, policies."""

import numpy as np
import pytest

from repro.coopt.awareness import EwmaEstimate, PerformanceAwareness
from repro.coopt.broker2 import CoOptimizedBroker
from repro.coopt.policies import TransferDeduplicator, advise
from repro.core.anomaly.report import AnomalyReport, build_anomaly_report
from repro.grid.presets import build_mini
from repro.panda.job import DataAccessMode, Job, JobKind
from repro.rucio.activities import TransferActivity
from repro.rucio.did import DID
from repro.rucio.transfer import TransferEvent, TransferRequest


def event(src="A", dst="B", size=1000, start=0.0, end=10.0, ok=True) -> TransferEvent:
    return TransferEvent(
        transfer_id=1, lfn="f", scope="s", dataset="d", proddblock="d",
        file_size=size, source_rse=f"{src}_DATADISK", dest_rse=f"{dst}_DATADISK",
        source_site=src, destination_site=dst,
        activity=TransferActivity.ANALYSIS_DOWNLOAD,
        submitted_at=0.0, starttime=start, endtime=end, success=ok,
    )


class TestEwma:
    def test_first_sample_sets_value(self):
        e = EwmaEstimate(alpha=0.5)
        e.update(10.0)
        assert e.get(0.0) == 10.0

    def test_converges(self):
        e = EwmaEstimate(alpha=0.5)
        for _ in range(50):
            e.update(4.0)
        assert e.get(0.0) == pytest.approx(4.0)

    def test_default_when_empty(self):
        assert EwmaEstimate().get(7.0) == 7.0


class TestAwareness:
    @pytest.fixture()
    def aw(self):
        return PerformanceAwareness(build_mini(seed=1))

    def test_link_throughput_learns(self, aw):
        prior = aw.link_throughput("CERN-PROD", "BNL-ATLAS")
        aw.on_transfer(event("CERN-PROD", "BNL-ATLAS", size=10**9, start=0, end=1))
        assert aw.link_throughput("CERN-PROD", "BNL-ATLAS") != prior

    def test_failed_transfers_ignored(self, aw):
        prior = aw.link_throughput("CERN-PROD", "BNL-ATLAS")
        aw.on_transfer(event("CERN-PROD", "BNL-ATLAS", ok=False))
        assert aw.link_throughput("CERN-PROD", "BNL-ATLAS") == prior

    def test_queue_wait_rises_with_backlog(self, aw):
        base = aw.expected_queue_wait("CERN-PROD")
        aw.note_backlog("CERN-PROD", +50)
        assert aw.expected_queue_wait("CERN-PROD") > base

    def test_backlog_never_negative(self, aw):
        aw.note_backlog("CERN-PROD", -5)
        assert aw.expected_queue_wait("CERN-PROD") > 0

    def test_failure_rate_tracks_jobs(self, aw):
        job = Job(
            pandaid=1, jeditaskid=1, kind=JobKind.ANALYSIS,
            access_mode=DataAccessMode.DIRECT_LOCAL, input_dataset=None,
            input_file_dids=[], ninputfilebytes=0, noutputfilebytes=0,
            creation_time=0.0,
        )
        job.computing_site = "CERN-PROD"
        job.start_time, job.end_time = 10.0, 20.0
        from repro.panda.job import JobStatus
        job.status = JobStatus.FAILED
        for _ in range(20):
            aw.on_job_done(job)
        assert aw.failure_rate("CERN-PROD") > 0.5

    def test_staging_estimate(self, aw):
        t = aw.estimate_staging_seconds("CERN-PROD", "BNL-ATLAS", 10**9)
        assert t > 0
        assert aw.estimate_staging_seconds("CERN-PROD", "BNL-ATLAS", 0) == 0.0


class TestDeduplicator:
    def _req(self, lfn="f") -> TransferRequest:
        return TransferRequest(
            request_id=1, file_did=DID("s", lfn), size=100,
            dest_rse="A_DATADISK", activity=TransferActivity.ANALYSIS_DOWNLOAD,
        )

    def test_first_allowed_second_suppressed(self):
        d = TransferDeduplicator(ttl_seconds=100.0)
        assert d.should_transfer(self._req(), "A", now=0.0)
        assert not d.should_transfer(self._req(), "A", now=50.0)
        assert d.suppressed == 1 and d.suppressed_bytes == 100

    def test_ttl_expiry_allows_again(self):
        d = TransferDeduplicator(ttl_seconds=100.0)
        d.should_transfer(self._req(), "A", now=0.0)
        assert d.should_transfer(self._req(), "A", now=200.0)

    def test_different_dest_allowed(self):
        d = TransferDeduplicator()
        d.should_transfer(self._req(), "A", now=0.0)
        assert d.should_transfer(self._req(), "B", now=0.0)

    def test_expire_cleans(self):
        d = TransferDeduplicator(ttl_seconds=10.0)
        d.should_transfer(self._req(), "A", now=0.0)
        assert d.expire(now=100.0) == 1


class TestAdvise:
    def test_empty_report_minimal_advice(self):
        assert advise(AnomalyReport()) == []

    def test_advice_on_study(self, small_report, small_telemetry, small_study):
        report = build_anomaly_report(
            small_report["rm2"].matched_jobs(),
            small_telemetry.transfers,
            site_names=small_study.harness.topology.site_names(),
        )
        advice = advise(report)
        assert advice
        # sorted by priority
        assert [a.priority for a in advice] == sorted(a.priority for a in advice)
        assert all(str(a).startswith("[P") for a in advice)


class TestCoOptimizedBroker:
    def test_assigns_somewhere_sensible(self, tiny_harness):
        aw = PerformanceAwareness(tiny_harness.topology)
        broker = CoOptimizedBroker(
            tiny_harness.topology, tiny_harness.rucio, aw, np.random.default_rng(0))
        job = Job(
            pandaid=1, jeditaskid=1, kind=JobKind.ANALYSIS,
            access_mode=DataAccessMode.DIRECT_LOCAL, input_dataset=None,
            input_file_dids=[], ninputfilebytes=0, noutputfilebytes=0,
            creation_time=0.0,
        )
        d = broker.assign(job, 0.0)
        assert d.site_name in tiny_harness.topology.sites
        assert d.reason.startswith("coopt")

    def test_prefers_data_site_when_unloaded(self, tiny_harness):
        from repro.grid.rse import RseKind, rse_name
        from repro.rucio.did import DatasetDid, FileDid

        cat = tiny_harness.catalog
        f = FileDid(did=DID("s", "f1"), size=10**9, dataset_name="ds", proddblock="ds")
        cat.register_file(f)
        ds = DatasetDid(did=DID("s", "ds"), file_dids=[f.did])
        cat.register_dataset(ds)
        tiny_harness.replicas.add(f.did, rse_name("BNL-ATLAS", RseKind.DATADISK), f.size)

        aw = PerformanceAwareness(tiny_harness.topology)
        broker = CoOptimizedBroker(
            tiny_harness.topology, tiny_harness.rucio, aw, np.random.default_rng(0))
        job = Job(
            pandaid=1, jeditaskid=1, kind=JobKind.ANALYSIS,
            access_mode=DataAccessMode.COPY_TO_SCRATCH, input_dataset=ds.did,
            input_file_dids=[f.did], ninputfilebytes=f.size, noutputfilebytes=0,
            creation_time=0.0,
        )
        d = broker.assign(job, 0.0)
        assert d.site_name == "BNL-ATLAS"
        assert d.data_local

    def test_avoids_overloaded_data_site(self, tiny_harness):
        from repro.grid.rse import RseKind, rse_name
        from repro.rucio.did import DatasetDid, FileDid

        cat = tiny_harness.catalog
        f = FileDid(did=DID("s", "f2"), size=10**6, dataset_name="ds2", proddblock="ds2")
        cat.register_file(f)
        ds = DatasetDid(did=DID("s", "ds2"), file_dids=[f.did])
        cat.register_dataset(ds)
        tiny_harness.replicas.add(f.did, rse_name("BNL-ATLAS", RseKind.DATADISK), f.size)

        aw = PerformanceAwareness(tiny_harness.topology)
        # Saturate BNL with an enormous backlog.
        aw.note_backlog("BNL-ATLAS", 100000)
        broker = CoOptimizedBroker(
            tiny_harness.topology, tiny_harness.rucio, aw, np.random.default_rng(0))
        job = Job(
            pandaid=2, jeditaskid=2, kind=JobKind.ANALYSIS,
            access_mode=DataAccessMode.COPY_TO_SCRATCH, input_dataset=ds.did,
            input_file_dids=[f.did], ninputfilebytes=f.size, noutputfilebytes=0,
            creation_time=0.0,
        )
        d = broker.assign(job, 0.0)
        assert d.site_name != "BNL-ATLAS"
