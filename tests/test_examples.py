"""Smoke tests: every example script runs end-to-end at tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "--days", "0.25", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "Table 1" in proc.stdout
        assert "Matching method" in proc.stdout

    def test_anomaly_hunt(self):
        proc = run_example("anomaly_hunt.py", "--days", "0.5", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "anomaly report" in proc.stdout
        assert "Mitigation advice" in proc.stdout

    def test_co_optimization_study(self):
        proc = run_example("co_optimization_study.py", "--days", "0.25", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "locality" in proc.stdout and "coopt" in proc.stdout

    def test_matching_quality_sweep(self):
        proc = run_example("matching_quality_sweep.py", "--days", "0.25", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "precision" in proc.stdout
        # pristine metadata reaches full recall
        assert "1.000" in proc.stdout

    def test_data_carousel(self):
        proc = run_example("data_carousel.py", "--hours", "3", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "tape recalls" in proc.stdout
        assert "iDDS" in proc.stdout

    def test_site_operations(self):
        proc = run_example("site_operations.py", "--days", "0.25", "--seed", "1")
        assert proc.returncode == 0, proc.stderr
        assert "Site dashboards" in proc.stdout
        assert "Streaming monitor" in proc.stdout
