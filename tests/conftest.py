"""Shared fixtures.

The expensive fixtures (a completed small campaign and its matching
report) are session-scoped: integration-level tests across many files
reuse one simulation instead of re-running it per test.
"""

from __future__ import annotations

import pytest

from repro.columnar import ColumnarIndex
from repro.core.matching.base import CandidateIndex
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig


@pytest.fixture(autouse=True)
def _reset_index_build_counts():
    """Zero the join-build counters before every test.

    Cache-hit assertions (e.g. in ``tests/test_exec.py``) count builds
    via these process-wide class counters; without the reset their
    baseline depends on which tests ran earlier in the session.
    """
    CandidateIndex.build_count = 0
    ColumnarIndex.build_count = 0
    yield


@pytest.fixture(scope="session")
def small_study() -> EightDayStudy:
    """A 1.5-day campaign, enough for every analysis to have material."""
    cfg = EightDayConfig(
        seed=424242,
        days=1.5,
        analysis_tasks_per_hour=8.0,
        production_tasks_per_hour=1.0,
        background_transfers_per_hour=120.0,
    )
    return EightDayStudy(cfg).run()


@pytest.fixture(scope="session")
def small_report(small_study):
    return small_study.matching_report()


@pytest.fixture(scope="session")
def small_telemetry(small_study):
    return small_study.telemetry


@pytest.fixture()
def tiny_harness() -> SimulationHarness:
    """A very small, fast harness for per-test simulations (unrun)."""
    from repro.grid.presets import build_mini

    cfg = HarnessConfig(
        seed=7,
        workload=WorkloadConfig(
            duration=6 * 3600.0,
            analysis_tasks_per_hour=3.0,
            production_tasks_per_hour=0.5,
            background_transfers_per_hour=20.0,
        ),
        drain=6 * 3600.0,
    )
    return SimulationHarness(cfg, topology=build_mini(seed=7))
