"""Tests for the network model."""

import pytest

from repro.grid.network import (
    CONGESTION_BUCKET_SECONDS,
    NetworkModel,
)
from repro.grid.presets import build_mini


@pytest.fixture()
def net():
    topo = build_mini(seed=1)
    assert topo.network is not None
    return topo.network


class TestLinkProfiles:
    def test_local_faster_than_remote(self, net: NetworkModel):
        local = net.profile("CERN-PROD", "CERN-PROD")
        remote = net.profile("CERN-PROD", "BNL-ATLAS")
        assert local.nominal_bandwidth > remote.nominal_bandwidth
        assert local.is_local and not remote.is_local

    def test_profiles_cached(self, net: NetworkModel):
        assert net.profile("CERN-PROD", "BNL-ATLAS") is net.profile("CERN-PROD", "BNL-ATLAS")

    def test_directional_asymmetry(self, net: NetworkModel):
        """Fig 7a/7b: opposite directions have different capacity."""
        ab = net.profile("BNL-ATLAS", "NDGF-T1").nominal_bandwidth
        ba = net.profile("NDGF-T1", "BNL-ATLAS").nominal_bandwidth
        assert ab != ba

    def test_cross_region_slower(self):
        topo = build_mini(seed=2)
        net = topo.network
        # same-region T2s vs cross-region: find a pair of each
        t2_names = [s.name for s in topo.real_sites() if s.name.startswith("T2")]
        regions = {n: topo.site(n).region for n in t2_names}
        # remote latency should be higher cross-region
        cross = [
            net.profile(a, b).latency
            for a in t2_names for b in t2_names
            if a != b and regions[a] != regions[b]
        ]
        same = [
            net.profile(a, b).latency
            for a in t2_names for b in t2_names
            if a != b and regions[a] == regions[b]
        ]
        if cross and same:
            assert min(cross) > max(same) - 1e-9


class TestTimeVaryingFactors:
    def test_diurnal_bounds(self, net: NetworkModel):
        prof = net.profile("CERN-PROD", "BNL-ATLAS")
        for h in range(0, 24):
            f = net.diurnal_factor(prof, h * 3600.0)
            assert 1.0 - prof.diurnal_amplitude - 1e-9 <= f <= 1.0 + 1e-9

    def test_congestion_deterministic_per_bucket(self, net: NetworkModel):
        prof = net.profile("CERN-PROD", "BNL-ATLAS")
        t = 1000.0
        assert net.congestion_factor(prof, t) == net.congestion_factor(prof, t + 1.0)

    def test_congestion_varies_across_buckets(self, net: NetworkModel):
        prof = net.profile("CERN-PROD", "BNL-ATLAS")
        factors = {
            net.congestion_factor(prof, k * CONGESTION_BUCKET_SECONDS) for k in range(50)
        }
        assert len(factors) > 10

    def test_congestion_never_exceeds_one(self, net: NetworkModel):
        prof = net.profile("CERN-PROD", "CERN-PROD")
        assert all(
            net.congestion_factor(prof, k * CONGESTION_BUCKET_SECONDS) <= 1.0
            for k in range(200)
        )

    def test_deep_drops_occur(self, net: NetworkModel):
        """Fig 8's intermittent dips: some buckets collapse below 20%."""
        prof = net.profile("CERN-PROD", "CERN-PROD")
        factors = [
            net.congestion_factor(prof, k * CONGESTION_BUCKET_SECONDS) for k in range(500)
        ]
        assert any(f <= 0.20 for f in factors)


class TestEffectiveBandwidth:
    def test_share_divides(self, net: NetworkModel):
        one = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 0.0, share=1)
        four = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 0.0, share=4)
        assert one == pytest.approx(4 * four) or four == 64_000.0

    def test_floor(self, net: NetworkModel):
        bw = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 0.0, share=10**9)
        assert bw == 64_000.0

    def test_unknown_site_gets_default(self, net: NetworkModel):
        assert net.effective_bandwidth("UNKNOWN", "CERN-PROD", 0.0) > 0


class TestActiveAccounting:
    def test_acquire_release(self, net: NetworkModel):
        assert net.active_on("A", "B") == 0
        net.acquire("A", "B")
        net.acquire("A", "B")
        assert net.active_on("A", "B") == 2
        net.release("A", "B")
        net.release("A", "B")
        assert net.active_on("A", "B") == 0

    def test_release_without_acquire_raises(self, net: NetworkModel):
        with pytest.raises(RuntimeError):
            net.release("X", "Y")


class TestTransferDuration:
    def test_positive_and_monotone_in_size(self, net: NetworkModel):
        d1 = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 1e9, 0.0)
        d2 = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 10e9, 0.0)
        assert 0 < d1 < d2

    def test_zero_bytes_is_latency_only(self, net: NetworkModel):
        d = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 0.0, 0.0)
        prof = net.profile("CERN-PROD", "BNL-ATLAS")
        assert d == pytest.approx(prof.latency)

    def test_negative_size_rejected(self, net: NetworkModel):
        with pytest.raises(ValueError):
            net.transfer_duration("CERN-PROD", "BNL-ATLAS", -1.0, 0.0)

    def test_share_slows_transfer(self, net: NetworkModel):
        base = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 5e9, 0.0)
        net.acquire("CERN-PROD", "BNL-ATLAS")
        net.acquire("CERN-PROD", "BNL-ATLAS")
        shared = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 5e9, 0.0)
        net.release("CERN-PROD", "BNL-ATLAS")
        net.release("CERN-PROD", "BNL-ATLAS")
        assert shared > base

    def test_straddles_congestion_buckets(self, net: NetworkModel):
        """A big transfer crosses buckets; duration reflects integration,
        not a single-bucket rate."""
        d = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 500e9, 0.0)
        assert d > CONGESTION_BUCKET_SECONDS
