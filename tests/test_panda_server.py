"""Tests for brokerage, harvester mechanics, and the PanDA server,
driven on the mini topology with a real Rucio stack."""

from typing import List

import numpy as np
import pytest

from repro.grid.presets import build_mini
from repro.grid.rse import RseKind, rse_name
from repro.ids import IdFactory
from repro.panda.brokerage import DataLocalityBroker
from repro.panda.errors import FailureModel
from repro.panda.harvester import interval_union_length
from repro.panda.job import DataAccessMode, Job, JobKind, JobStatus
from repro.panda.server import PandaServer
from repro.panda.task import JediTask
from repro.rucio.catalog import DidCatalog
from repro.rucio.client import RucioClient
from repro.rucio.did import DID, DatasetDid, FileDid
from repro.rucio.fts import TransferService
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.sim.engine import Engine


class Stack:
    def __init__(self, seed: int = 1, failure_rate: float = 0.0,
                 base_failure_rate: float = 0.0):
        self.engine = Engine()
        self.topo = build_mini(seed=seed)
        self.ids = IdFactory()
        self.catalog = DidCatalog()
        self.replicas = ReplicaRegistry(self.topo)
        self.events = []
        self.fts = TransferService(
            self.engine, self.topo, self.replicas, self.ids,
            self.events.append, np.random.default_rng(seed), failure_rate=failure_rate,
        )
        self.rules = RuleEngine(self.topo, self.catalog, self.replicas, self.fts, self.ids)
        self.rucio = RucioClient(self.topo, self.catalog, self.replicas, self.fts,
                                 self.rules, self.ids)
        self.broker = DataLocalityBroker(self.topo, self.rucio, np.random.default_rng(seed))
        self.panda = PandaServer(
            self.engine, self.topo, self.rucio, self.broker,
            np.random.default_rng(seed),
            failure_model=FailureModel(base_failure_rate=base_failure_rate,
                                       staging_coupling=0.0),
        )
        self.done: List[Job] = []
        self.panda.on_job_done(self.done.append)

    def dataset_at(self, site: str, n_files: int = 2, size: int = 10**9,
                   taskid: int = 100) -> DatasetDid:
        ds = DatasetDid(did=DID("user.t", f"ds{taskid}"), jeditaskid=taskid)
        for i in range(n_files):
            f = FileDid(did=DID("user.t", f"f{taskid}_{i}"), size=size,
                        dataset_name=ds.did.name, proddblock=ds.did.name)
            self.catalog.register_file(f)
            ds.file_dids.append(f.did)
            self.replicas.add(f.did, rse_name(site, RseKind.DATADISK), size)
        self.catalog.register_dataset(ds)
        return ds

    def job(self, ds: DatasetDid, mode=DataAccessMode.COPY_TO_SCRATCH,
            taskid: int = 100, uploads: bool = False, nout: int = 0) -> Job:
        files = self.catalog.dataset_files(ds.did)
        return Job(
            pandaid=self.ids.next_pandaid(),
            jeditaskid=taskid,
            kind=JobKind.ANALYSIS,
            access_mode=mode,
            input_dataset=ds.did,
            input_file_dids=[f.did for f in files],
            ninputfilebytes=sum(f.size for f in files),
            noutputfilebytes=nout,
            creation_time=self.engine.now,
            payload_walltime=600.0,
            uploads_output=uploads,
        )


class TestDataLocalityBroker:
    def test_prefers_data_holding_site(self):
        st = Stack()
        st.broker.locality_bias = 1.0
        ds = st.dataset_at("BNL-ATLAS")
        d = st.broker.assign(st.job(ds), 0.0)
        assert d.site_name == "BNL-ATLAS"
        assert d.data_local and d.locality_fraction == 1.0

    def test_partial_data_best_fraction(self):
        st = Stack()
        st.broker.locality_bias = 1.0
        ds = st.dataset_at("BNL-ATLAS", n_files=4)
        # strip two files from BNL so nowhere holds everything
        for fd in ds.file_dids[:2]:
            st.replicas.remove(fd, "BNL-ATLAS_DATADISK")
            st.replicas.add(fd, "NDGF-T1_DATADISK", 10**9)
        d = st.broker.assign(st.job(ds), 0.0)
        assert d.reason == "partial-data"
        assert d.site_name in ("BNL-ATLAS", "NDGF-T1")
        assert 0 < d.locality_fraction < 1

    def test_no_input_random_site(self):
        st = Stack()
        job = st.job(st.dataset_at("CERN-PROD"))
        job.input_dataset = None
        d = st.broker.assign(job, 0.0)
        assert d.reason == "no-input"
        assert d.site_name in st.topo.sites

    def test_override_possible(self):
        st = Stack(seed=2)
        st.broker.locality_bias = 0.0  # always override
        ds = st.dataset_at("BNL-ATLAS")
        d = st.broker.assign(st.job(ds), 0.0)
        assert d.reason == "override"


class TestIntervalUnion:
    def test_disjoint(self):
        assert interval_union_length([(0, 10), (20, 30)], 0, 100) == 20

    def test_overlapping_merged(self):
        assert interval_union_length([(0, 10), (5, 15)], 0, 100) == 15

    def test_clipping(self):
        assert interval_union_length([(0, 100)], 10, 30) == 20

    def test_empty_window(self):
        assert interval_union_length([(0, 10)], 5, 5) == 0

    def test_outside_window(self):
        assert interval_union_length([(50, 60)], 0, 10) == 0

    def test_nested(self):
        assert interval_union_length([(0, 30), (5, 10)], 0, 100) == 30


class TestEndToEndJob:
    def _submit_and_run(self, st: Stack, job: Job, until: float = 7 * 86400.0):
        task = JediTask(jeditaskid=job.jeditaskid, kind=job.kind, scope="user.t",
                        access_mode=job.access_mode, input_dataset=job.input_dataset)
        if job.jeditaskid not in st.panda.tasks:
            st.panda.register_task(task)
        st.panda.submit(job)
        st.engine.run(until=until)

    def test_copy_job_completes_with_local_transfers(self):
        st = Stack()
        st.broker.locality_bias = 1.0
        ds = st.dataset_at("BNL-ATLAS", n_files=3)
        job = st.job(ds)
        self._submit_and_run(st, job)
        assert job.status is JobStatus.FINISHED
        assert job.computing_site == "BNL-ATLAS"
        assert len(job.true_transfer_ids) >= 3
        downloads = [e for e in st.events if e.pandaid == job.pandaid and e.is_download]
        assert all(e.is_local for e in downloads)
        # stage-in happened during the queuing phase
        assert all(e.starttime < job.start_time for e in downloads)
        assert job.stagein_busy_seconds > 0

    def test_direct_local_job_produces_no_transfers(self):
        st = Stack()
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL)
        self._submit_and_run(st, job)
        assert job.status is JobStatus.FINISHED
        assert job.true_transfer_ids == []

    def test_direct_io_overlaps_execution(self):
        st = Stack()
        st.broker.locality_bias = 1.0
        ds = st.dataset_at("BNL-ATLAS", n_files=2, size=5 * 10**9)
        job = st.job(ds, mode=DataAccessMode.DIRECT_IO)
        self._submit_and_run(st, job)
        assert job.status is JobStatus.FINISHED
        streams = [e for e in st.events if e.pandaid == job.pandaid]
        assert streams
        assert all(e.starttime >= job.start_time for e in streams)

    def test_upload_job_emits_upload_events(self):
        st = Stack()
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL, uploads=True, nout=10**9)
        self._submit_and_run(st, job)
        ups = [e for e in st.events if e.pandaid == job.pandaid and e.is_upload]
        assert ups
        assert sum(e.file_size for e in ups) == job.noutputfilebytes
        assert all(e.source_site == job.computing_site for e in ups)
        # uploads start during wall time, before the recorded end
        assert all(job.start_time <= e.starttime < job.end_time for e in ups)

    def test_failed_payload_reports_error(self):
        st = Stack(base_failure_rate=1.0)
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL)
        self._submit_and_run(st, job)
        assert job.status is JobStatus.FAILED
        assert job.error_code != 0 and job.error_message

    def test_stagein_failure_fails_job_before_start(self):
        st = Stack(failure_rate=1.0)  # every transfer fails
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds)
        self._submit_and_run(st, job)
        assert job.status is JobStatus.FAILED
        assert job.error_code == 1099
        assert job.wall_time == 0.0

    def test_slot_contention_serialises_jobs(self):
        st = Stack()
        st.broker.locality_bias = 1.0
        site = st.topo.site("BNL-ATLAS")
        site.compute_slots = 1
        ds = st.dataset_at("BNL-ATLAS")
        j1, j2 = st.job(ds), st.job(ds)
        self._submit_and_run(st, j1, until=0.0)
        st.panda.submit(j2)
        st.engine.run(until=7 * 86400.0)
        assert j1.status.is_terminal and j2.status.is_terminal
        spans = sorted([(j1.start_time, j1.end_time), (j2.start_time, j2.end_time)])
        assert spans[1][0] >= spans[0][1] - 1e-6

    def test_callbacks_fired_once_per_job(self):
        st = Stack()
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL)
        self._submit_and_run(st, job)
        assert st.done == [job]

    def test_duplicate_submit_rejected(self):
        st = Stack()
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL)
        self._submit_and_run(st, job)
        with pytest.raises(ValueError):
            st.panda.submit(job)

    def test_success_fraction(self):
        st = Stack()
        ds = st.dataset_at("BNL-ATLAS")
        job = st.job(ds, mode=DataAccessMode.DIRECT_LOCAL)
        self._submit_and_run(st, job)
        assert st.panda.success_fraction() == 1.0
