"""Reaper-in-campaign integration and doctest execution."""

import doctest

import pytest


class TestReaperInCampaign:
    def test_reaper_frees_storage_without_breaking_analysis(self):
        from repro.grid.presets import build_mini
        from repro.scenarios.runtime import HarnessConfig, SimulationHarness
        from repro.workload.generator import WorkloadConfig

        def run(enable_reaper: bool):
            h = SimulationHarness(
                HarnessConfig(
                    seed=13,
                    workload=WorkloadConfig(
                        duration=24 * 3600.0,
                        analysis_tasks_per_hour=6.0,
                        production_tasks_per_hour=0.5,
                        background_transfers_per_hour=40.0,
                    ),
                    drain=24 * 3600.0,
                    enable_reaper=enable_reaper,
                ),
                topology=build_mini(seed=13),
            )
            h.run()
            return h

        with_reaper = run(True)
        without = run(False)

        assert with_reaper.reaper is not None
        assert with_reaper.reaper.stats.sweeps > 0
        assert with_reaper.reaper.stats.deleted_replicas > 0

        used_with = sum(r.used_bytes for r in with_reaper.topology.rses.values())
        used_without = sum(r.used_bytes for r in without.topology.rses.values())
        assert used_with < used_without

        # deletion must not corrupt job accounting
        assert with_reaper.collector.n_jobs > 0
        assert all(j.status.is_terminal for j in with_reaper.collector.completed_jobs)

    def test_reaper_disabled_by_default(self, tiny_harness):
        assert tiny_harness.reaper is None


class TestDoctests:
    """Execute the doctest examples embedded in docstrings."""

    @pytest.mark.parametrize("module_name", [
        "repro.units",
        "repro.ids",
        "repro.rng",
    ])
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
        assert results.attempted > 0, f"no doctests found in {module_name}"
