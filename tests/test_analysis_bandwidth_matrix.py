"""Tests for bandwidth series (Figs 7-8) and the site matrix (Fig 3)."""

import numpy as np
import pytest

from repro.core.analysis.bandwidth import (
    bandwidth_series,
    busiest_links,
    directional_asymmetry,
    link_transfers,
)
from repro.core.analysis.matrix import build_transfer_matrix
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_transfer


class TestBandwidthSeries:
    def test_bytes_conserved(self):
        ts = [
            make_transfer(row_id=1, size=3000, start=0.0, end=30.0),
            make_transfer(row_id=2, size=1000, start=50.0, end=70.0),
        ]
        s = bandwidth_series(ts, 0.0, 100.0, bucket_seconds=10.0)
        assert s.bytes_per_bucket.sum() == pytest.approx(4000.0)

    def test_uniform_spreading(self):
        ts = [make_transfer(size=1000, start=0.0, end=20.0)]
        s = bandwidth_series(ts, 0.0, 20.0, bucket_seconds=10.0)
        assert np.allclose(s.bytes_per_bucket, [500.0, 500.0])

    def test_partial_bucket_overlap(self):
        ts = [make_transfer(size=1000, start=5.0, end=15.0)]
        s = bandwidth_series(ts, 0.0, 20.0, bucket_seconds=10.0)
        assert np.allclose(s.bytes_per_bucket, [500.0, 500.0])

    def test_instantaneous_transfer(self):
        ts = [make_transfer(size=777, start=12.0, end=12.0)]
        s = bandwidth_series(ts, 0.0, 20.0, bucket_seconds=10.0)
        assert s.bytes_per_bucket[1] == 777

    def test_mbps_conversion(self):
        ts = [make_transfer(size=100 * 10**6, start=0.0, end=10.0)]
        s = bandwidth_series(ts, 0.0, 10.0, bucket_seconds=10.0)
        assert s.peak_mbps == pytest.approx(10.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_series([], 10.0, 10.0)

    def test_mbps_cached(self):
        ts = [make_transfer(size=1000, start=0.0, end=10.0)]
        s = bandwidth_series(ts, 0.0, 20.0, bucket_seconds=10.0)
        assert s.mbps is s.mbps  # cached_property: derived once per series
        assert s.peak_mbps == s.mbps.max()

    def test_fluctuation_zero_for_constant(self):
        ts = [make_transfer(size=1000, start=0.0, end=40.0)]
        s = bandwidth_series(ts, 0.0, 40.0, bucket_seconds=10.0)
        assert s.fluctuation == pytest.approx(0.0)

    def test_fluctuation_positive_for_bursty(self):
        ts = [
            make_transfer(row_id=1, size=10000, start=0.0, end=10.0),
            make_transfer(row_id=2, size=100, start=30.0, end=40.0),
        ]
        s = bandwidth_series(ts, 0.0, 40.0, bucket_seconds=10.0)
        assert s.fluctuation > 0.5

    def test_times_axis(self):
        s = bandwidth_series([], 100.0, 130.0, bucket_seconds=10.0)
        assert list(s.times()) == [100.0, 110.0, 120.0]


class TestLinkSelection:
    def test_busiest_remote_links(self):
        ts = (
            [make_transfer(row_id=i, src="A", dst="B") for i in range(5)]
            + [make_transfer(row_id=10 + i, src="A", dst="C") for i in range(2)]
            + [make_transfer(row_id=20 + i, src="A", dst="A") for i in range(9)]
        )
        top = busiest_links(ts, kind="remote", top=2)
        assert top[0][0] == ("A", "B") and top[0][1] == 5

    def test_busiest_local(self):
        ts = [make_transfer(row_id=i, src="A", dst="A") for i in range(3)]
        assert busiest_links(ts, kind="local") == [(("A", "A"), 3)]

    def test_unknown_excluded(self):
        ts = [make_transfer(src=UNKNOWN_SITE, dst="B")]
        assert busiest_links(ts, kind="remote") == []

    def test_link_transfers_filter(self):
        ts = [make_transfer(row_id=1, src="A", dst="B"),
              make_transfer(row_id=2, src="B", dst="A")]
        assert [t.row_id for t in link_transfers(ts, "A", "B")] == [1]

    def test_directional_asymmetry(self):
        ts = [
            make_transfer(row_id=1, src="A", dst="B", size=9000, start=0.0, end=10.0),
            make_transfer(row_id=2, src="B", dst="A", size=1000, start=0.0, end=10.0),
        ]
        fwd, rev = directional_asymmetry(ts, "A", "B", 0.0, 10.0, 10.0)
        assert fwd.peak_mbps > rev.peak_mbps


class TestTransferMatrix:
    def _matrix(self):
        names = ["A", "B", UNKNOWN_SITE]
        ts = [
            make_transfer(row_id=1, src="A", dst="A", size=700),
            make_transfer(row_id=2, src="A", dst="B", size=200),
            make_transfer(row_id=3, src="A", dst=UNKNOWN_SITE, size=100),
        ]
        return build_transfer_matrix(ts, names)

    def test_total_and_local(self):
        m = self._matrix()
        assert m.total_volume == 1000
        assert m.local_volume == 700
        assert m.local_fraction == pytest.approx(0.7)

    def test_unknown_folding(self):
        names = ["A", UNKNOWN_SITE]
        ts = [make_transfer(src="A", dst="GARBAGE-NAME", size=50)]
        m = build_transfer_matrix(ts, names)
        assert m.unknown_volume() == 50

    def test_requires_unknown_site(self):
        with pytest.raises(ValueError):
            build_transfer_matrix([], ["A", "B"])

    def test_means(self):
        m = self._matrix()
        assert m.mean_pair_volume() == pytest.approx(1000 / 3)
        g = m.geometric_mean_pair_volume()
        assert g == pytest.approx((700 * 200 * 100) ** (1 / 3), rel=1e-6)
        assert m.imbalance_ratio() > 1.0

    def test_outliers(self):
        m = self._matrix()
        out = m.outliers(300)
        assert out == [("A", "A", 700.0)]

    def test_sites_with_traffic(self):
        m = self._matrix()
        assert m.sites_with_traffic() == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            from repro.core.analysis.matrix import TransferMatrix
            TransferMatrix(site_names=["A"], volume=np.zeros((2, 2)))

    def test_study_matrix_properties(self, small_telemetry, small_study):
        m = build_transfer_matrix(
            small_telemetry.transfers, small_study.harness.topology.site_names())
        assert m.total_volume > 0
        # Fig 3 shape: local transfers dominate by volume
        assert m.local_fraction > 0.5
        # heavy tail: arithmetic mean well above geometric mean
        assert m.imbalance_ratio() > 2.0
        # the UNKNOWN row/column is populated (mislabelled endpoints)
        assert m.unknown_volume() > 0
