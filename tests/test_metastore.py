"""Tests for the metadata store: indices, query DSL, collections, façade."""

import pytest

from repro.metastore.index import FieldIndex
from repro.metastore.opensearch import OpenSearchLike
from repro.metastore.query import Bool, Exists, MatchAll, Range, Term, Terms
from repro.metastore.store import Collection, DocumentStore

from tests.helpers import make_job, make_transfer


class TestFieldIndex:
    def test_term_lookup(self):
        idx = FieldIndex("x")
        idx.add(0, "a")
        idx.add(1, "b")
        idx.add(2, "a")
        assert idx.term("a") == {0, 2}
        assert idx.term("missing") == set()

    def test_terms_union(self):
        idx = FieldIndex("x")
        idx.add(0, "a")
        idx.add(1, "b")
        idx.add(2, "c")
        assert idx.terms(["a", "c"]) == {0, 2}

    def test_range_queries(self):
        idx = FieldIndex("t")
        for i, v in enumerate([5.0, 1.0, 3.0, 9.0]):
            idx.add(i, v)
        idx.freeze()
        assert idx.range(gte=3.0) == {0, 2, 3}
        assert idx.range(lt=5.0) == {1, 2}
        assert idx.range(gte=1.0, lt=3.0) == {1}
        assert idx.range(gt=5.0) == {3}
        assert idx.range(lte=5.0) == {0, 1, 2}

    def test_range_on_text_rejected(self):
        idx = FieldIndex("x")
        idx.add(0, "text")
        with pytest.raises(TypeError):
            idx.range(gte=1)

    def test_range_lazy_freeze(self):
        idx = FieldIndex("t")
        idx.add(0, 1.0)
        assert idx.range(gte=0.0) == {0}  # freezes on demand

    def test_add_after_freeze_invalidates(self):
        idx = FieldIndex("t")
        idx.add(0, 1.0)
        idx.freeze()
        idx.add(1, 2.0)
        assert idx.range(gte=0.0) == {0, 1}

    def test_exists_and_cardinality(self):
        idx = FieldIndex("x")
        idx.add(0, "a")
        idx.add(1, None)
        assert idx.exists() == {0}
        assert idx.cardinality == 1

    def test_empty_range(self):
        assert FieldIndex("t").range(gte=0) == set()


class TestQueryDSL:
    @pytest.fixture()
    def col(self) -> Collection:
        c = Collection("jobs")
        c.ingest([
            make_job(pandaid=1, site="A", end=100.0),
            make_job(pandaid=2, site="B", end=200.0),
            make_job(pandaid=3, site="A", end=300.0, status="failed"),
        ])
        c.freeze()
        return c

    def test_term(self, col):
        assert {j.pandaid for j in col.search(Term("computingsite", "A"))} == {1, 3}

    def test_terms(self, col):
        hits = col.search(Terms("pandaid", [1, 3]))
        assert {j.pandaid for j in hits} == {1, 3}

    def test_range(self, col):
        hits = col.search(Range("endtime", gte=150.0, lt=250.0))
        assert [j.pandaid for j in hits] == [2]

    def test_bool_must(self, col):
        q = Bool(must=[Term("computingsite", "A"), Term("status", "failed")])
        assert [j.pandaid for j in col.search(q)] == [3]

    def test_bool_should(self, col):
        q = Bool(should=[Term("pandaid", 1), Term("pandaid", 2)])
        assert {j.pandaid for j in col.search(q)} == {1, 2}

    def test_bool_must_and_should(self, col):
        q = Bool(must=[Term("computingsite", "A")],
                 should=[Term("status", "failed"), Term("status", "finished")])
        assert {j.pandaid for j in col.search(q)} == {1, 3}

    def test_bool_must_not(self, col):
        q = Bool(must=[MatchAll()], must_not=[Term("status", "failed")])
        assert {j.pandaid for j in col.search(q)} == {1, 2}

    def test_match_all(self, col):
        assert col.count(MatchAll()) == 3

    def test_exists(self, col):
        assert col.count(Exists("computingsite")) == 3

    def test_unknown_field_matches_nothing(self, col):
        assert col.count(Term("nope", 1)) == 0


class TestDocumentStore:
    def test_create_and_lookup(self):
        store = DocumentStore()
        store.create("a")
        assert "a" in store and store.names() == ["a"]

    def test_duplicate_rejected(self):
        store = DocumentStore()
        store.create("a")
        with pytest.raises(ValueError):
            store.create("a")

    def test_missing_collection(self):
        with pytest.raises(KeyError):
            DocumentStore().collection("ghost")

    def test_indexed_fields_restriction(self):
        c = Collection("t", indexed_fields=["pandaid"])
        c.ingest([make_job(pandaid=1, site="A")])
        assert c.count(Term("pandaid", 1)) == 1
        assert c.count(Term("computingsite", "A")) == 0  # not indexed

    def test_ingest_dicts(self):
        c = Collection("d")
        c.ingest([{"k": 1}, {"k": 2}])
        assert c.count(Term("k", 2)) == 1

    def test_ingest_rejects_garbage(self):
        with pytest.raises(TypeError):
            Collection("d").ingest([object()])


class TestOpenSearchLike:
    @pytest.fixture()
    def os_like(self) -> OpenSearchLike:
        os_like = OpenSearchLike()
        os_like.jobs.ingest([
            make_job(pandaid=1, end=100.0, label="user"),
            make_job(pandaid=2, end=900.0, label="managed"),
            make_job(pandaid=3, end=None, start=None, label="user"),
        ])
        os_like.transfers.ingest([
            make_transfer(row_id=1, start=50.0, jeditaskid=9),
            make_transfer(row_id=2, start=500.0, jeditaskid=0),
        ])
        os_like.store.freeze()
        return os_like

    def test_jobs_completed_in_window(self, os_like):
        hits = os_like.jobs_completed_in(0.0, 500.0)
        assert [j.pandaid for j in hits] == [1]

    def test_running_jobs_invisible(self, os_like):
        """§4.2: jobs still running at window end are excluded."""
        hits = os_like.jobs_completed_in(0.0, 10_000.0)
        assert all(j.pandaid != 3 for j in hits)

    def test_user_jobs_only(self, os_like):
        hits = os_like.user_jobs_completed_in(0.0, 10_000.0)
        assert [j.pandaid for j in hits] == [1]

    def test_transfers_started_in(self, os_like):
        assert len(os_like.transfers_started_in(0.0, 100.0)) == 1

    def test_transfers_with_taskid(self, os_like):
        hits = os_like.transfers_with_taskid_in(0.0, 1000.0)
        assert [t.row_id for t in hits] == [1]

    def test_from_telemetry_roundtrip(self, small_telemetry):
        os_like = OpenSearchLike.from_telemetry(small_telemetry)
        assert len(os_like.jobs) == len(small_telemetry.jobs)
        assert len(os_like.transfers) == len(small_telemetry.transfers)
        assert len(os_like.files) == len(small_telemetry.files)

    def test_files_of_job(self, small_telemetry):
        os_like = OpenSearchLike.from_telemetry(small_telemetry)
        some = small_telemetry.files[0]
        hits = os_like.files_of_job(some.pandaid)
        assert all(f.pandaid == some.pandaid for f in hits)
        assert some in hits
