"""Edge-case and failure-injection tests across modules.

These widen coverage beyond the happy paths: empty populations,
degenerate configurations, mid-run cancellations, capacity boundaries,
and failure cascades.
"""

from typing import List

import numpy as np
import pytest

from repro.core.analysis.bandwidth import bandwidth_series
from repro.core.analysis.matrix import build_transfer_matrix
from repro.core.analysis.queuing import timings_for_result
from repro.core.analysis.summary import activity_breakdown
from repro.core.analysis.thresholds import threshold_sweep
from repro.core.matching.base import CandidateIndex, MatchResult
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.opensearch import OpenSearchLike
from repro.sim.engine import Engine
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_file, make_job, make_transfer


class TestEmptyPopulations:
    def test_empty_matcher_run(self):
        index = CandidateIndex([], [])
        res = ExactMatcher().run([], index, 0)
        assert res.n_matched_jobs == 0
        assert res.matched_pairs() == []
        assert res.local_remote_split() == (0, 0)

    def test_empty_activity_breakdown(self):
        res = MatchResult(method="exact", matches=[], n_jobs_considered=0,
                          n_transfers_considered=0)
        rows = activity_breakdown(res, [])
        assert rows[-1].activity == "Total"
        assert rows[-1].total == 0
        assert rows[-1].pct == 0.0

    def test_empty_threshold_sweep(self):
        sweep = threshold_sweep([])
        assert sweep.n_jobs == 0
        assert sweep.success_fraction() == 0.0
        assert sweep.failure_enrichment(75) == 0.0

    def test_empty_timings(self):
        res = MatchResult(method="exact", matches=[], n_jobs_considered=0,
                          n_transfers_considered=0)
        assert timings_for_result(res) == []

    def test_empty_bandwidth_series(self):
        s = bandwidth_series([], 0.0, 100.0, 10.0)
        assert s.peak_mbps == 0.0
        assert s.fluctuation == 0.0

    def test_empty_matrix(self):
        m = build_transfer_matrix([], ["A", UNKNOWN_SITE])
        assert m.total_volume == 0.0
        assert m.local_fraction == 0.0
        assert m.mean_pair_volume() == 0.0
        assert m.geometric_mean_pair_volume() == 0.0

    def test_pipeline_on_empty_store(self):
        source = OpenSearchLike()
        source.store.freeze()
        report = MatchingPipeline(source).run(0.0, 100.0)
        assert report.n_jobs == 0
        assert all(report[m].n_matched_jobs == 0 for m in report.methods)


class TestEngineEdges:
    def test_callback_scheduling_at_now(self):
        e = Engine()
        hits = []
        e.schedule_at(5.0, lambda: e.schedule_at(e.now, lambda: hits.append(e.now)))
        e.run()
        assert hits == [5.0]

    def test_cancel_during_run(self):
        e = Engine()
        hits = []
        later = e.schedule_at(10.0, lambda: hits.append("later"))
        e.schedule_at(5.0, later.cancel)
        e.run()
        assert hits == []

    def test_zero_delay_chain_terminates(self):
        e = Engine()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 100:
                e.schedule_in(0.0, tick)

        e.schedule_at(0.0, tick)
        e.run()
        assert count["n"] == 100
        assert e.now == 0.0


class TestMatchingEdges:
    def test_zero_size_job_never_size_matches_positively(self):
        """ninputfilebytes == 0: sums of positive transfer sizes can't hit 0,
        but noutputfilebytes == 0 would trivially match — guard the semantics."""
        job = make_job(nin=0, nout=0)
        files = [make_file(lfn="f0", size=1000)]
        transfers = [make_transfer(lfn="f0", size=1000)]
        res = ExactMatcher().run([job], CandidateIndex(files, transfers), 1)
        # the whole-set sum is 1000, equal to neither 0-target
        assert res.n_matched_jobs == 0

    def test_transfer_exactly_at_job_end_excluded(self):
        job = make_job(end=2000.0, nin=1000)
        files = [make_file(lfn="f0", size=1000)]
        t = make_transfer(lfn="f0", size=1000, start=2000.0, end=2100.0)
        res = ExactMatcher().run([job], CandidateIndex(files, [t]), 1)
        assert res.n_matched_jobs == 0  # strict '<' per Algorithm 1

    def test_transfer_just_before_job_end_included(self):
        job = make_job(end=2000.0, nin=1000)
        files = [make_file(lfn="f0", size=1000)]
        t = make_transfer(lfn="f0", size=1000, start=1999.9, end=2100.0)
        res = ExactMatcher().run([job], CandidateIndex(files, [t]), 1)
        assert res.n_matched_jobs == 1

    def test_job_with_no_file_rows_unmatchable(self):
        job = make_job()
        transfers = [make_transfer()]
        res = ExactMatcher().run([job], CandidateIndex([], transfers), 1)
        assert res.n_matched_jobs == 0

    def test_same_lfn_different_scopes_distinct(self):
        job = make_job(nin=1000)
        files = [make_file(lfn="f0", size=1000, scope="user.a")]
        wrong_scope = make_transfer(lfn="f0", size=1000, scope="user.b")
        res = ExactMatcher().run([job], CandidateIndex(files, [wrong_scope]), 1)
        assert res.n_matched_jobs == 0


class TestFailureCascades:
    def test_all_transfers_failing_still_terminates(self):
        """A campaign where every transfer fails must still complete all
        jobs (with failures) and leave consistent telemetry."""
        from repro.grid.presets import build_mini
        from repro.scenarios.runtime import HarnessConfig, SimulationHarness
        from repro.workload.generator import WorkloadConfig

        h = SimulationHarness(
            HarnessConfig(
                seed=3,
                workload=WorkloadConfig(
                    duration=24 * 3600.0,
                    analysis_tasks_per_hour=12.0,
                    production_tasks_per_hour=0.3,
                    background_transfers_per_hour=10.0,
                ),
                drain=80 * 3600.0,
                transfer_failure_rate=1.0,
            ),
            topology=build_mini(seed=3),
        )
        h.run()
        jobs = h.collector.completed_jobs
        assert jobs
        assert all(j.status.is_terminal for j in jobs)
        # copy jobs overwhelmingly fail: stage-in failure, or an
        # early (patience-triggered) start at elevated risk — a small
        # lucky minority may still finish, exactly like Fig 11's near
        # misses.
        from repro.panda.job import DataAccessMode
        copy_jobs = [j for j in jobs
                     if j.access_mode is DataAccessMode.COPY_TO_SCRATCH
                     and j.true_transfer_ids]
        if copy_jobs:
            failed = sum(1 for j in copy_jobs if not j.succeeded)
            assert failed / len(copy_jobs) > 0.6
            assert any(j.error_code == 1099 for j in copy_jobs)

    def test_unreliable_site_fails_most_jobs(self):
        from repro.grid.site import Site
        from repro.grid.tier import Tier
        from repro.panda.errors import FailureModel

        fm = FailureModel(base_failure_rate=0.1, staging_coupling=0.0)
        awful = Site("X", Tier.T3, "Asia", reliability=0.5)
        p = fm.payload_failure_probability(awful, 0.0)
        assert p >= 0.5


class TestCapacityBoundaries:
    def test_rse_exact_fill(self):
        from repro.grid.rse import RseKind, StorageElement

        rse = StorageElement("S", "S", RseKind.DATADISK, capacity_bytes=100.0)
        rse.allocate(100.0)
        assert rse.free_bytes == 0.0
        with pytest.raises(RuntimeError):
            rse.allocate(0.1)

    def test_single_slot_site(self):
        from repro.grid.site import Site
        from repro.grid.tier import Tier

        s = Site("X", Tier.T3, "Asia", compute_slots=1)
        s.occupy()
        assert s.load == 1.0
        s.release()
        assert s.load == 0.0

    def test_link_capacity_one(self):
        """FTS with capacity 1 serialises everything but loses nothing."""
        from tests.test_rucio_fts import Rig

        rig = Rig(link_capacity=1)
        ds = rig.register_dataset(n_files=5)
        for fd in ds.file_dids:
            rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK"))
        rig.engine.run()
        assert len(rig.events) == 5
        assert all(e.success for e in rig.events)
