"""Tests for Algorithm 1 (exact), RM1, RM2, and the candidate join.

Hand-built records make every filter's behaviour explicit; the
integration-level behaviour over a full campaign is covered in
test_matching_pipeline.py.
"""

import pytest

from repro.core.matching.base import BaseMatcher, CandidateIndex, TransferClass
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_file, make_job, make_transfer, matching_triple


def run_one(matcher: BaseMatcher, job, files, transfers):
    index = CandidateIndex(files, transfers)
    return matcher.run([job], index, n_transfers_considered=len(transfers))


class TestCandidateJoin:
    def test_full_attribute_join(self):
        job, files, transfers = matching_triple()
        index = CandidateIndex(files, transfers)
        assert len(index.candidates_for_job(job)) == 3

    def test_files_require_both_ids(self):
        job, files, transfers = matching_triple()
        files[0].jeditaskid = 999  # wrong task
        index = CandidateIndex(files, transfers)
        lfns = {t.lfn for t in index.candidates_for_job(job)}
        assert "f0" not in lfns

    @pytest.mark.parametrize("field,value", [
        ("dataset", "other"),
        ("proddblock", "other"),
        ("scope", "other"),
        ("file_size", 999),
    ])
    def test_attribute_mismatch_excluded(self, field, value):
        job, files, transfers = matching_triple(n_files=1)
        setattr(transfers[0], field, value)
        index = CandidateIndex(files, transfers)
        assert index.candidates_for_job(job) == []

    def test_taskless_transfers_unreachable(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].jeditaskid = 0
        index = CandidateIndex(files, transfers)
        assert index.candidates_for_job(job) == []

    def test_wrong_task_transfers_unreachable(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].jeditaskid = 12345
        index = CandidateIndex(files, transfers)
        assert index.candidates_for_job(job) == []

    def test_candidates_deduplicated(self):
        job, files, transfers = matching_triple(n_files=1)
        files.append(make_file(lfn="f0", size=1000))  # duplicate file row
        index = CandidateIndex(files, transfers)
        assert len(index.candidates_for_job(job)) == 1


class TestExactMatcher:
    def test_perfect_match(self):
        job, files, transfers = matching_triple()
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 1
        assert res.n_matched_transfers == 3
        assert res.matches[0].transfer_class is TransferClass.ALL_LOCAL

    def test_time_condition(self):
        """Condition (1): transfer must start before job end."""
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].starttime = job.endtime + 1
        transfers[0].endtime = job.endtime + 2
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 0

    def test_size_condition_input(self):
        """Condition (2): whole-set sum must equal ninputfilebytes."""
        job, files, transfers = matching_triple(n_files=2)
        job.ninputfilebytes = 1500  # != 2000
        job.noutputfilebytes = 0
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 0

    def test_size_condition_output_accepted(self):
        job, files, transfers = matching_triple(n_files=2)
        job.ninputfilebytes = 777
        job.noutputfilebytes = 2000  # matches the sum instead
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 1

    def test_site_condition_download(self):
        """Condition (3): download destination = computing site."""
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = "ELSEWHERE"
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 0

    def test_site_condition_upload(self):
        job = make_job(nin=0, nout=1000)
        files = [make_file(lfn="out", size=1000, ftype="output")]
        ok = make_transfer(lfn="out", size=1000, download=False, upload=True,
                           src="SITE-A", dst="SITE-B")
        res = run_one(ExactMatcher(), job, files, [ok])
        assert res.n_matched_jobs == 1
        bad = make_transfer(lfn="out", size=1000, download=False, upload=True,
                            src="OTHER", dst="SITE-B")
        res = run_one(ExactMatcher(), job, files, [bad])
        assert res.n_matched_jobs == 0

    def test_pollution_breaks_whole_set_size(self):
        """A duplicated transfer set doubles S_j and kills the exact
        match — why the Fig 12 job is only RM2-matched."""
        job, files, transfers = matching_triple(n_files=2)
        dupes = [
            make_transfer(row_id=100 + i, lfn=f"f{i}", size=1000,
                          start=10.0 + i, end=20.0 + i)
            for i in range(2)
        ]
        res = run_one(ExactMatcher(), job, files, transfers + dupes)
        assert res.n_matched_jobs == 0
        res_rm1 = run_one(RM1Matcher(), job, files, transfers + dupes)
        assert res_rm1.n_matched_jobs == 1
        assert res_rm1.matches[0].n_transfers == 4

    def test_unstarted_job_unmatched(self):
        job, files, transfers = matching_triple()
        job.endtime = None
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.n_matched_jobs == 0

    def test_remote_transfer_classification(self):
        job, files, transfers = matching_triple(n_files=2)
        transfers[0].source_site = "FAR-AWAY"
        res = run_one(ExactMatcher(), job, files, transfers)
        assert res.matches[0].transfer_class is TransferClass.MIXED
        local, remote = res.local_remote_split()
        assert (local, remote) == (1, 1)


class TestRM1Matcher:
    def test_recovers_partial_set(self):
        """RM1 catches the subset case: one transfer lost its task id."""
        job, files, transfers = matching_triple(n_files=3)
        transfers[0].jeditaskid = 0
        assert run_one(ExactMatcher(), job, files, transfers).n_matched_jobs == 0
        res = run_one(RM1Matcher(), job, files, transfers)
        assert res.n_matched_jobs == 1
        assert res.matches[0].n_transfers == 2

    def test_still_enforces_time_and_site(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = "ELSEWHERE"
        assert run_one(RM1Matcher(), job, files, transfers).n_matched_jobs == 0

    def test_superset_of_exact(self):
        job, files, transfers = matching_triple()
        exact = run_one(ExactMatcher(), job, files, transfers)
        rm1 = run_one(RM1Matcher(), job, files, transfers)
        assert exact.matched_transfer_ids() <= rm1.matched_transfer_ids()


class TestRM2Matcher:
    def test_accepts_unknown_destination(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = UNKNOWN_SITE
        assert run_one(RM1Matcher(), job, files, transfers).n_matched_jobs == 0
        res = run_one(RM2Matcher(), job, files, transfers)
        assert res.n_matched_jobs == 1

    def test_accepts_invalid_site_name(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = "S1TE-TYP0"
        matcher = RM2Matcher(known_sites={"SITE-A", "SITE-B"})
        assert run_one(matcher, job, files, transfers).n_matched_jobs == 1

    def test_rejects_contradicting_site(self):
        """A valid-but-different site is a contradiction, not missing
        information — RM2 must still reject it."""
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = "SITE-B"
        matcher = RM2Matcher(known_sites={"SITE-A", "SITE-B"})
        assert run_one(matcher, job, files, transfers).n_matched_jobs == 0

    def test_unknown_upload_source(self):
        job = make_job(nin=0, nout=1000)
        files = [make_file(lfn="out", size=1000, ftype="output")]
        t = make_transfer(lfn="out", size=1000, download=False, upload=True,
                          src=UNKNOWN_SITE, dst="SITE-B")
        assert run_one(RM2Matcher(), job, files, [t]).n_matched_jobs == 1

    def test_unknown_counted_remote(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = UNKNOWN_SITE
        res = run_one(RM2Matcher(), job, files, transfers)
        local, remote = res.local_remote_split()
        assert (local, remote) == (0, 1)
        assert res.matches[0].transfer_class is TransferClass.ALL_REMOTE


class TestMonotonicity:
    def test_methods_nest_on_handmade_mix(self):
        """exact ⊆ RM1 ⊆ RM2 on a deliberately messy population."""
        job, files, transfers = matching_triple(n_files=3)
        transfers[0].jeditaskid = 0                      # RM1 territory
        transfers[1].destination_site = UNKNOWN_SITE     # RM2 territory
        ids = {}
        for matcher in (ExactMatcher(), RM1Matcher(), RM2Matcher()):
            ids[matcher.name] = run_one(matcher, job, files, transfers).matched_transfer_ids()
        assert ids["exact"] <= ids["rm1"] <= ids["rm2"]
        assert len(ids["rm2"]) > len(ids["rm1"])
