"""Tests for the grid package: tiers, sites, RSEs, topology, presets."""

import pytest

from repro.grid.presets import WlcgPresetConfig, build_mini, build_wlcg
from repro.grid.rse import RseKind, StorageElement, rse_name
from repro.grid.site import Site, UNKNOWN_SITE_NAME, make_unknown_site, sites_by_tier
from repro.grid.tier import Tier
from repro.grid.topology import GridTopology


class TestTier:
    def test_ordering(self):
        assert Tier.T0 < Tier.T1 < Tier.T2 < Tier.T3

    def test_label(self):
        assert Tier.T1.label == "Tier-1"

    @pytest.mark.parametrize("text,expected", [
        ("T2", Tier.T2),
        ("Tier-0", Tier.T0),
        ("3", Tier.T3),
        ("tier1", Tier.T1),
    ])
    def test_parse(self, text, expected):
        assert Tier.parse(text) is expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Tier.parse("T9")


class TestSite:
    def test_occupancy_lifecycle(self):
        s = Site("X", Tier.T2, "Asia", compute_slots=2)
        s.occupy()
        s.occupy()
        assert not s.has_free_slot
        assert s.load == 1.0
        s.release()
        assert s.has_free_slot

    def test_occupy_over_capacity_raises(self):
        s = Site("X", Tier.T2, "Asia", compute_slots=1)
        s.occupy()
        with pytest.raises(RuntimeError):
            s.occupy()

    def test_release_below_zero_raises(self):
        s = Site("X", Tier.T2, "Asia")
        with pytest.raises(RuntimeError):
            s.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            Site("X", Tier.T2, "Asia", compute_slots=0)
        with pytest.raises(ValueError):
            Site("X", Tier.T2, "Asia", parallel_stagein=0)
        with pytest.raises(ValueError):
            Site("X", Tier.T2, "Asia", reliability=1.5)

    def test_unknown_site(self):
        u = make_unknown_site()
        assert u.is_unknown
        assert u.name == UNKNOWN_SITE_NAME

    def test_sites_by_tier(self):
        sites = [Site("A", Tier.T1, "X"), Site("B", Tier.T2, "X"), Site("C", Tier.T1, "X")]
        grouped = sites_by_tier(sites)
        assert [s.name for s in grouped[Tier.T1]] == ["A", "C"]


class TestStorageElement:
    def test_allocate_release(self):
        rse = StorageElement("S_DATADISK", "S", RseKind.DATADISK, capacity_bytes=100.0)
        rse.allocate(60.0)
        assert rse.free_bytes == 40.0
        rse.release(60.0)
        assert rse.used_bytes == 0.0

    def test_over_capacity_raises(self):
        rse = StorageElement("S", "S", RseKind.DATADISK, capacity_bytes=10.0)
        with pytest.raises(RuntimeError):
            rse.allocate(11.0)

    def test_release_more_than_used_raises(self):
        rse = StorageElement("S", "S", RseKind.DATADISK, capacity_bytes=10.0)
        with pytest.raises(RuntimeError):
            rse.release(1.0)

    def test_negative_amounts_rejected(self):
        rse = StorageElement("S", "S", RseKind.DATADISK, capacity_bytes=10.0)
        with pytest.raises(ValueError):
            rse.allocate(-1.0)
        with pytest.raises(ValueError):
            rse.release(-1.0)

    def test_rse_name_convention(self):
        assert rse_name("CERN-PROD", RseKind.TAPE) == "CERN-PROD_TAPE"

    def test_tape_kind(self):
        assert RseKind.TAPE.is_tape and not RseKind.DATADISK.is_tape


class TestTopology:
    def test_build_assigns_dense_indices(self):
        topo = build_mini()
        indices = sorted(s.index for s in topo.sites.values())
        assert indices == list(range(topo.n_sites))

    def test_includes_unknown(self):
        topo = build_mini()
        assert UNKNOWN_SITE_NAME in topo.sites
        assert topo.sites[UNKNOWN_SITE_NAME].is_unknown

    def test_unknown_has_no_rses(self):
        topo = build_mini()
        assert topo.site_rses(UNKNOWN_SITE_NAME) == []

    def test_tier01_get_tape(self):
        topo = build_mini()
        assert any(r.kind is RseKind.TAPE for r in topo.site_rses("CERN-PROD"))
        t2 = topo.sites_in_tier(Tier.T2)[0]
        assert all(r.kind is not RseKind.TAPE for r in topo.site_rses(t2.name))

    def test_duplicate_site_rejected(self):
        sites = [Site("A", Tier.T2, "X"), Site("A", Tier.T2, "X")]
        with pytest.raises(ValueError):
            GridTopology.build(sites)

    def test_datadisk_lookup(self):
        topo = build_mini()
        assert topo.datadisk("CERN-PROD").kind is RseKind.DATADISK

    def test_real_sites_excludes_unknown(self):
        topo = build_mini()
        assert all(not s.is_unknown for s in topo.real_sites())

    def test_site_names_in_index_order(self):
        topo = build_mini()
        names = topo.site_names()
        assert [topo.sites[n].index for n in names] == list(range(len(names)))

    def test_validate_passes(self):
        build_mini().validate()


class TestWlcgPreset:
    def test_paper_site_count(self):
        """§3.2: 111 sites recorded transfers (110 real + UNKNOWN)."""
        topo = build_wlcg(seed=0)
        assert topo.n_sites == 111

    def test_tier_composition(self):
        topo = build_wlcg(seed=0)
        assert len(topo.sites_in_tier(Tier.T0)) == 1
        assert len(topo.sites_in_tier(Tier.T1)) == 10
        assert len(topo.sites_in_tier(Tier.T2)) == 60
        assert len(topo.sites_in_tier(Tier.T3)) == 39

    def test_deterministic_in_seed(self):
        a = build_wlcg(seed=5)
        b = build_wlcg(seed=5)
        assert a.site_names() == b.site_names()
        assert [s.compute_slots for s in a.real_sites()] == [
            s.compute_slots for s in b.real_sites()
        ]

    def test_seed_changes_capacities(self):
        a = build_wlcg(seed=1)
        b = build_wlcg(seed=2)
        assert [s.compute_slots for s in a.real_sites()] != [
            s.compute_slots for s in b.real_sites()
        ]

    def test_sequential_sites_exist(self):
        topo = build_wlcg(seed=0)
        assert any(s.parallel_stagein == 1 for s in topo.real_sites())

    def test_known_anchor_sites(self):
        topo = build_wlcg(seed=0)
        for name in ("CERN-PROD", "BNL-ATLAS", "NDGF-T1"):
            assert name in topo.sites

    def test_custom_config(self):
        topo = build_wlcg(WlcgPresetConfig(n_tier2=4, n_tier3=2, seed=1))
        assert len(topo.sites_in_tier(Tier.T2)) == 4
        assert topo.n_sites == 1 + 10 + 4 + 2 + 1
