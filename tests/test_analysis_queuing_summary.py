"""Tests for queuing analysis (Figs 5-6) and summaries (Tables 1-2)."""

import pytest

from repro.core.analysis.queuing import (
    JobTransferTiming,
    compute_timing,
    correlation_size_vs_time,
    geomean_transfer_pct,
    mean_transfer_pct,
    timings_for_result,
    top_jobs_breakdown,
)
from repro.core.analysis.summary import (
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.matching.base import JobMatch, TransferClass

from tests.helpers import make_job, make_transfer


def timing(pct: float, status="finished", taskstatus="finished",
           cls=TransferClass.ALL_LOCAL, queue=1000.0) -> JobTransferTiming:
    return JobTransferTiming(
        pandaid=1, status=status, taskstatus=taskstatus,
        queuing_time=queue, transfer_time=queue * pct / 100.0,
        transfer_bytes=10**9, transfer_class=cls, n_transfers=2,
    )


class TestComputeTiming:
    def test_union_within_queue(self):
        job = make_job(creation=0.0, start=100.0, end=200.0)
        transfers = [
            make_transfer(row_id=1, start=10.0, end=30.0),
            make_transfer(row_id=2, start=20.0, end=40.0),  # overlaps
            make_transfer(row_id=3, start=150.0, end=160.0),  # inside wall
        ]
        t = compute_timing(JobMatch(job=job, transfers=transfers))
        assert t.queuing_time == 100.0
        assert t.transfer_time == 30.0  # union of [10,40] clipped
        assert t.transfer_pct == pytest.approx(30.0)

    def test_unstarted_job_none(self):
        job = make_job(start=None, end=None)
        assert compute_timing(JobMatch(job=job, transfers=[])) is None

    def test_label_encoding(self):
        assert timing(5).label == "D/D"
        assert timing(5, status="failed").label == "F/D"
        assert timing(5, taskstatus="failed").label == "D/F"

    def test_other_time(self):
        t = timing(25.0, queue=400.0)
        assert t.other_time == 300.0


class TestTopJobs:
    def test_filters_and_sorts(self):
        ts = [
            timing(50, queue=100.0),
            timing(5, queue=5000.0),       # below min pct -> excluded
            timing(20, queue=2000.0),
            timing(30, queue=500.0, cls=TransferClass.ALL_REMOTE),
        ]
        top = top_jobs_breakdown(ts, "local", min_transfer_pct=10.0, top=40)
        assert [t.queuing_time for t in top] == [2000.0, 100.0]

    def test_remote_selection(self):
        ts = [timing(30, cls=TransferClass.ALL_REMOTE), timing(30)]
        top = top_jobs_breakdown(ts, "remote")
        assert len(top) == 1
        assert top[0].transfer_class is TransferClass.ALL_REMOTE

    def test_top_cap(self):
        ts = [timing(20, queue=float(q)) for q in range(100, 200)]
        assert len(top_jobs_breakdown(ts, "local", top=40)) == 40


class TestAggregates:
    def test_mean_and_geomean(self):
        ts = [timing(10), timing(40)]
        assert mean_transfer_pct(ts) == pytest.approx(25.0)
        assert geomean_transfer_pct(ts) == pytest.approx(20.0)

    def test_geomean_handles_zero(self):
        ts = [timing(0), timing(10)]
        assert geomean_transfer_pct(ts) > 0

    def test_empty(self):
        assert mean_transfer_pct([]) == 0.0
        assert geomean_transfer_pct([]) == 0.0

    def test_correlation_weak_on_study(self, small_report):
        """Fig 5 discussion: volume does not determine queuing time.

        Small-sample correlations fluctuate by seed; the reproduced
        claim is the absence of near-deterministic dependence.
        """
        ts = timings_for_result(small_report["exact"])
        assert abs(correlation_size_vs_time(ts)) < 0.8

    def test_correlation_empty(self):
        assert correlation_size_vs_time([]) == 0.0


class TestSummariesOnStudy:
    def test_table1_total_row(self, small_report, small_telemetry):
        rows = activity_breakdown(small_report["exact"], small_telemetry.transfers)
        assert rows[-1].activity == "Total"
        assert rows[-1].matched == sum(r.matched for r in rows[:-1])
        assert rows[-1].total == small_report.n_transfers_with_taskid

    def test_table2a_totals(self, small_report):
        rows = method_comparison_transfers(small_report)
        by = {r.method: r for r in rows}
        for m in small_report.methods:
            assert by[m].total == small_report[m].n_matched_transfers

    def test_table2b_totals(self, small_report):
        rows = method_comparison_jobs(small_report)
        by = {r.method: r for r in rows}
        for m in small_report.methods:
            assert by[m].total == small_report[m].n_matched_jobs

    def test_headline(self, small_report):
        h = headline_stats(small_report)
        assert 0 < h.job_match_pct < 100
        assert 0 < h.transfer_match_pct < 100
        assert h.mean_transfer_pct >= h.geomean_transfer_pct
