"""Tests for the closed co-optimization control loop.

Three load-bearing properties:

1. **Snapshot parity** — awareness state built *incrementally* from
   ``MatchDelta`` emissions (the ``site_awareness``/``link_awareness``
   folds) is bit-identical to the state *batch-computed* from the
   accumulated ``MatchResult``, at every micro-batch boundary, under
   any delivery order and batch size (hypothesis-driven).
2. **Decision determinism** — two control-loop runs at the same seed
   produce identical decision logs and identical end-state metrics;
   every stochastic choice draws from streams keyed by (seed, epoch).
3. **Steering mechanics** — re-brokerage legally moves READY jobs
   across sites (carrying stage-in accounting), dedup suppresses only
   ephemeral downloads, pre-staging pins datasets through the rule
   engine, and absorbed snapshots replace only observed cells.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coopt import (
    POLICY_LADDER,
    AwarenessSnapshot,
    ControlLoop,
    DecisionRecord,
    PerformanceAwareness,
    PolicySpec,
    get_policy,
    policy_names,
    register_policy,
    snapshot_from_result,
    snapshot_from_rows,
)
from repro.coopt.state import (
    link_rows_from_matches,
    site_rows_from_matches,
)
from repro.grid.presets import WlcgPresetConfig, build_mini
from repro.obs import Obs
from repro.panda.job import JobStatus
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.stream import FoldSet, StreamingCollector, StreamProcessor
from repro.workload.generator import WorkloadConfig

METHOD = "rm2"


# -- shared material ---------------------------------------------------------------


@pytest.fixture(scope="module")
def live_harness() -> SimulationHarness:
    cfg = HarnessConfig(
        seed=13,
        workload=WorkloadConfig(
            duration=18 * 3600.0,
            analysis_tasks_per_hour=6.0,
            production_tasks_per_hour=0.5,
            background_transfers_per_hour=30.0,
        ),
        drain=10 * 3600.0,
    )
    harness = SimulationHarness(
        cfg, topology=build_mini(seed=13), collector_factory=StreamingCollector
    )
    harness.run()
    return harness


@pytest.fixture(scope="module")
def site_names(live_harness):
    return tuple(live_harness.topology.site_names())


def _congested_config(seed: int = 5) -> HarnessConfig:
    """Small overloaded grid: queues long enough that steering fires."""
    return HarnessConfig(
        seed=seed,
        workload=WorkloadConfig(
            duration=6 * 3600.0,
            analysis_tasks_per_hour=120.0,
            production_tasks_per_hour=0.2,
            background_transfers_per_hour=20.0,
        ),
        grid=WlcgPresetConfig(n_tier2=4, n_tier3=2, scale=0.08),
        drain=6 * 3600.0,
    )


def _congested_loop(policy: str = "full", seed: int = 5) -> ControlLoop:
    return ControlLoop(
        _congested_config(seed),
        policy,
        epoch_seconds=3600.0,
        rebroker_wait_threshold=600.0,
        prestage_min_demand=2,
    )


# -- incremental vs batch snapshot parity ------------------------------------------


def _incremental_snapshots(live_harness, site_names, events, batch_events, lateness):
    """Stream the events; cut an (incremental, batch) snapshot pair at
    every micro-batch boundary plus after finish()."""
    t0, t1 = live_harness.window
    proc = StreamProcessor(
        t0,
        t1,
        known_sites=live_harness.known_site_names(),
        lateness=lateness,
        folds=FoldSet.with_awareness(METHOD),
    )
    pairs = []

    def cut(epoch):
        inc = snapshot_from_rows(
            proc.folds["site_awareness"].rows(),
            proc.folds["link_awareness"].rows(),
            site_names,
            generation=epoch,
        )
        batch = snapshot_from_result(
            proc.results()[METHOD], site_names, generation=epoch
        )
        pairs.append((inc, batch))

    epoch = 0
    for i in range(0, len(events), batch_events):
        proc.process(events[i : i + batch_events])
        epoch += 1
        cut(epoch)
    proc.finish()
    cut(epoch + 1)
    return pairs


class TestSnapshotParity:
    def test_in_order_parity_every_epoch(self, live_harness, site_names):
        events = list(live_harness.collector.log)
        pairs = _incremental_snapshots(live_harness, site_names, events, 300, 0.0)
        assert len(pairs) > 3
        for inc, batch in pairs:
            assert inc.bit_identical(batch)
        final, _ = pairs[-1]
        assert int(final.n_jobs.sum()) > 0  # the property is not vacuous
        assert int(final.link_count.sum()) > 0

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch_events=st.integers(min_value=1, max_value=500),
        extra_lateness=st.floats(min_value=0.0, max_value=7200.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_shuffled_parity_every_epoch(
        self, live_harness, site_names, seed, batch_events, extra_lateness
    ):
        """THE property: whatever the delivery order, batch size, or
        lateness bound, incremental fold state and batch recomputation
        agree byte-for-byte at every epoch — both views derive from the
        same finalized matches, so parity holds even when insufficient
        lateness makes those matches incomplete."""
        events = list(live_harness.collector.log)
        random.Random(seed).shuffle(events)
        pairs = _incremental_snapshots(
            live_harness, site_names, events, batch_events, extra_lateness
        )
        for inc, batch in pairs:
            assert inc.bit_identical(batch)

    def test_rows_from_matches_respects_first_claim(self, live_harness, site_names):
        """Batch row extraction dedups transfers by row id, keeping the
        first claimant in (job seq, position) order, and filters failed
        and zero-duration transfers before claiming."""
        t0, t1 = live_harness.window
        proc = StreamProcessor(
            t0, t1, known_sites=live_harness.known_site_names(),
            folds=FoldSet.with_awareness(METHOD),
        )
        proc.run([list(live_harness.collector.log)])
        result = proc.results()[METHOD]
        link_rows = link_rows_from_matches(result.matches)
        for src, dst, thpt in link_rows:
            assert thpt > 0.0
        site_rows = site_rows_from_matches(result.matches)
        assert len(site_rows) == len(result.matches)

    def test_bit_identical_is_nan_safe(self, site_names):
        a = snapshot_from_rows([], [], site_names)
        b = snapshot_from_rows([], [], site_names)
        assert np.isnan(a.queue_wait).all()
        assert a.bit_identical(b)
        c = snapshot_from_rows([(site_names[0], 5.0, False)], [], site_names)
        assert not a.bit_identical(c)


# -- policy registry ---------------------------------------------------------------


class TestPolicyRegistry:
    def test_ladder_is_registered_and_cumulative(self):
        assert POLICY_LADDER == (
            "baseline", "aware", "aware+dedup", "aware+rebroker", "full",
        )
        specs = [get_policy(p) for p in POLICY_LADDER]
        # Each rung enables a superset of the features below it.
        feats = [
            (s.aware_broker, s.dedup, s.rebroker, s.prestage) for s in specs
        ]
        for lower, upper in zip(feats, feats[1:]):
            assert all(a <= b for a, b in zip(lower, upper))
        assert feats[0] == (False, False, False, False)
        assert feats[-1] == (True, True, True, True)

    def test_unknown_policy_raises_with_known_names(self):
        with pytest.raises(KeyError, match="baseline"):
            get_policy("nope")

    def test_register_custom_policy(self):
        spec = PolicySpec(name="test-only", aware_broker=True)
        register_policy(spec)
        try:
            assert get_policy("test-only") is spec
            assert "test-only" in policy_names()
        finally:
            from repro.coopt.policies import _POLICY_REGISTRY

            _POLICY_REGISTRY.pop("test-only", None)


# -- decision determinism ----------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_decision_log(self):
        r1 = _congested_loop().run()
        r2 = _congested_loop().run()
        assert len(r1.decisions) > 10  # steering actually fired
        assert {d.kind for d in r1.decisions} == {"rebroker", "prestage"}
        assert r1.decisions == r2.decisions
        assert r1.makespan == r2.makespan
        assert r1.transfer_volume == r2.transfer_volume
        assert r1.suppressed == r2.suppressed
        assert r1.row() == r2.row()

    def test_different_seed_different_decisions(self):
        r1 = _congested_loop(seed=5).run()
        r2 = _congested_loop(seed=6).run()
        assert r1.decisions != r2.decisions

    def test_decision_records_are_generation_keyed(self):
        res = _congested_loop().run()
        for d in res.decisions:
            assert isinstance(d, DecisionRecord)
            assert d.generation >= 1  # never keyed on the empty model
            assert d.epoch >= 0
        gens = [d.generation for d in res.decisions]
        assert gens == sorted(gens)

    def test_loop_runs_once(self):
        loop = _congested_loop()
        loop.run()
        with pytest.raises(RuntimeError):
            loop.run()


# -- control loop end-to-end -------------------------------------------------------


class TestControlLoop:
    @pytest.fixture(scope="class")
    def full_run(self):
        loop = _congested_loop()
        return loop, loop.run()

    def test_epochs_and_generations_advance(self, full_run):
        loop, res = full_run
        assert res.n_epochs > 3
        # one generation per epoch plus the final flush
        assert res.final_generation == res.n_epochs + 1
        gens = [s.generation for s in loop.snapshots]
        assert gens == list(range(1, res.final_generation + 1))

    def test_later_telemetry_reflects_decisions(self, full_run):
        """Closed loop: jobs re-brokered at epoch N must appear in the
        final telemetry at their *new* site — decisions feed forward."""
        loop, res = full_run
        moved = {int(d.subject): d.detail.split("->")[1]
                 for d in res.decisions if d.kind == "rebroker"}
        assert moved
        terminal = {j.pandaid: j for j in loop.harness.panda.terminal_jobs()}
        relocated = [p for p in moved if p in terminal]
        assert relocated
        for pandaid in relocated:
            assert terminal[pandaid].computing_site == moved[pandaid]

    def test_rebrokered_jobs_complete(self, full_run):
        loop, res = full_run
        moved_ids = {int(d.subject) for d in res.decisions if d.kind == "rebroker"}
        done = {j.pandaid for j in loop.harness.panda.terminal_jobs()}
        # nearly all moved jobs reach a terminal state within the drain;
        # stragglers must still sit in a legal live state (not lost)
        assert len(moved_ids & done) > len(moved_ids) * 0.8
        for pandaid in moved_ids - done:
            job = loop.harness.panda.jobs[pandaid]
            assert job.status in (
                JobStatus.ASSIGNED, JobStatus.READY, JobStatus.RUNNING,
            )

    def test_prestage_pins_datasets(self, full_run):
        loop, res = full_run
        staged = [d for d in res.decisions if d.kind == "prestage"]
        assert staged
        assert res.prestaged == len(staged)
        assert len(loop._prestaged) >= len(staged)

    def test_baseline_policy_never_steers(self):
        res = _congested_loop("baseline").run()
        assert res.decisions == []
        assert res.suppressed == 0
        # ... but the observation half still runs
        assert res.final_generation == res.n_epochs + 1

    def test_obs_records_spans_and_counters(self):
        obs = Obs.collecting()
        cfg = _congested_config()
        ControlLoop(cfg, "full", epoch_seconds=3600.0,
                    rebroker_wait_threshold=600.0, prestage_min_demand=2,
                    obs=obs).run()
        cats = {s.cat for s in obs.tracer.spans}
        assert "coopt" in cats
        names = {s.name for s in obs.tracer.spans}
        assert {"coopt.loop", "coopt.epoch"} <= names
        snap = obs.metrics.snapshot()
        gauge_names = {g["name"] for g in snap["gauges"]}
        counter_names = {c["name"] for c in snap["counters"]}
        assert "coopt.awareness_staleness" in gauge_names
        assert "coopt.decisions" in counter_names
        kinds = {
            c["labels"].get("kind")
            for c in snap["counters"]
            if c["name"] == "coopt.decisions"
        }
        assert {"rebroker", "prestage", "suppress"} <= kinds


# -- steering mechanics ------------------------------------------------------------


class TestRebrokerMechanics:
    def test_steal_ready_takes_newest_analysis_job(self):
        harness = SimulationHarness(_congested_config())
        # run long enough that some site has a ready backlog
        harness.generator.prime()
        harness.engine.run(until=4 * 3600.0)
        sites = sorted(
            harness.panda.harvesters.values(),
            key=lambda h: h.ready_backlog,
            reverse=True,
        )
        h = sites[0]
        if h.ready_backlog == 0:
            pytest.skip("no backlog at this seed")
        before = h.ready_backlog
        job = h.steal_ready()
        assert job is not None
        assert job.status is JobStatus.READY
        assert h.ready_backlog == before - 1
        h.readopt(job)
        assert h.ready_backlog in (before, before - 1)  # may have started

    def test_ready_to_assigned_transition_is_legal(self):
        from repro.panda.job import DataAccessMode, Job, JobKind

        job = Job(
            pandaid=1, jeditaskid=1, kind=JobKind.ANALYSIS,
            access_mode=DataAccessMode.COPY_TO_SCRATCH, input_dataset=None,
            input_file_dids=[], ninputfilebytes=0, noutputfilebytes=0,
            creation_time=0.0,
        )
        job.transition(JobStatus.ASSIGNED)
        job.transition(JobStatus.READY)
        job.transition(JobStatus.ASSIGNED)  # re-brokerage path
        job.transition(JobStatus.READY)
        job.transition(JobStatus.RUNNING)


class TestAbsorb:
    def test_absorb_replaces_only_observed_cells(self, site_names):
        mini = build_mini(seed=1)
        aw = PerformanceAwareness(mini)
        names = aw.site_names
        rows = [(names[0], 200.0, False), (names[0], 400.0, False)]
        snap = snapshot_from_rows(rows, [], names, generation=7, as_of=3600.0)
        aw.absorb(snap)
        assert aw.generation == 7
        assert aw.as_of == 3600.0
        # observed site got the fold mean; unobserved keeps the prior
        assert aw.expected_queue_wait(names[0]) > 0
        idx0 = aw.site_index(names[0])
        assert float(aw._queue_value[idx0]) == 300.0
        for other in names[1:]:
            assert np.isnan(aw._queue_value[aw.site_index(other)])

    def test_absorb_rejects_mismatched_sites(self):
        aw = PerformanceAwareness(build_mini(seed=1))
        snap = snapshot_from_rows([], [], ("X", "Y"))
        with pytest.raises(ValueError):
            aw.absorb(snap)

    def test_snapshot_is_immutable_record(self, site_names):
        snap = snapshot_from_rows([], [], site_names, generation=3)
        assert isinstance(snap, AwarenessSnapshot)
        with pytest.raises(AttributeError):
            snap.generation = 4
