"""Tests for the sharded metastore (time-sliced field indices).

The load-bearing requirement is that sharding is a *representation*
change, never a semantic one: window materialization, matching reports,
and streaming accumulated state must be bit-identical for shard counts
{1, 2, 7} — including windows that straddle shard boundaries.  The
hypothesis suite drives exactly that property over random populations;
the unit tests cover routing, ingest placement, incremental freeze,
and the query-surface parity of the facade index.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.index import FieldIndex
from repro.metastore.opensearch import OpenSearchLike
from repro.metastore.query import Bool, Range, Term
from repro.metastore.sharding import (
    NULL_SHARD,
    ShardedCollection,
    SiteShardPolicy,
    TimeShardPolicy,
)
from repro.metastore.store import Collection
from repro.stream import EventLog, StreamProcessor
from repro.telemetry.degradation import DegradedTelemetry
from repro.telemetry.groundtruth import GroundTruth

from tests.helpers import make_file, make_job, make_transfer

WINDOW = 7 * 86400.0
KNOWN_SITES = {"SITE-A", "SITE-B"}
#: The satellite requirement: parity across 1, 2, and 7 time shards.
SHARD_SECONDS = (None, WINDOW / 2, WINDOW / 7)


# -- policies ---------------------------------------------------------------------


class TestTimeShardPolicy:
    def test_shard_key_floors_by_slice(self):
        p = TimeShardPolicy("endtime", 100.0)
        assert p.shard_key(0.0) == 0
        assert p.shard_key(99.9) == 0
        assert p.shard_key(100.0) == 1
        assert p.shard_key(250) == 2
        assert p.shard_key(-1.0) == -1

    def test_non_numeric_values_land_in_null_shard(self):
        p = TimeShardPolicy("endtime", 100.0)
        assert p.shard_key(None) == NULL_SHARD
        assert p.shard_key(float("nan")) == NULL_SHARD
        assert p.shard_key("soon") == NULL_SHARD
        assert p.shard_key(True) == NULL_SHARD  # bools are not timestamps

    def test_slice_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeShardPolicy("endtime", 0.0)

    def test_route_range_returns_overlapped_run(self):
        p = TimeShardPolicy("endtime", 100.0)
        keys = [0, 1, 2, 3, NULL_SHARD]
        assert p.route_range(keys, gte=150.0, lt=250.0) == [1, 2]
        # Boundary value 200.0 lives in shard 2 only, but gte=200 must
        # not drop shard 2; lt=200 must not include it spuriously.
        assert p.route_range(keys, gte=200.0, lt=400.0) == [2, 3]
        assert 0 not in p.route_range(keys, gte=100.0, lt=300.0)

    def test_route_range_unbounded_sides(self):
        p = TimeShardPolicy("endtime", 100.0)
        keys = [0, 1, 2]
        assert p.route_range(keys, lt=150.0) == [0, 1]
        assert p.route_range(keys, gte=150.0) == [1, 2]
        assert p.route_range(keys) == [0, 1, 2]

    def test_route_range_never_includes_null_shard(self):
        # None key-field values never enter the key-field index, so the
        # null shard has nothing a range on that field could return.
        p = TimeShardPolicy("endtime", 100.0)
        assert NULL_SHARD not in p.route_range([0, NULL_SHARD], gte=-math.inf)

    def test_route_term(self):
        p = TimeShardPolicy("endtime", 100.0)
        assert p.route_term([0, 1, 2], 150.0) == [1]
        assert p.route_term([0, 2], 150.0) == []


class TestSiteShardPolicy:
    def test_term_routes_to_one_shard(self):
        p = SiteShardPolicy("computingsite")
        assert p.route_term(["SITE-A", "SITE-B"], "SITE-B") == ["SITE-B"]
        assert p.route_term(["SITE-A"], "SITE-X") == []

    def test_range_fans_out(self):
        p = SiteShardPolicy("computingsite")
        assert p.route_range(["SITE-A", "SITE-B", NULL_SHARD]) == ["SITE-A", "SITE-B"]

    def test_empty_or_non_string_is_null(self):
        p = SiteShardPolicy("computingsite")
        assert p.shard_key("") == NULL_SHARD
        assert p.shard_key(None) == NULL_SHARD


# -- sharded collection -----------------------------------------------------------


def _jobs(*ends):
    return [
        make_job(pandaid=i + 1, jeditaskid=100 + i, end=e, site="SITE-A")
        for i, e in enumerate(ends)
    ]


def _pair(slice_seconds=100.0):
    """The same docs in a plain and a sharded collection."""
    docs = _jobs(10.0, 50.0, 150.0, 250.0, None)
    plain = Collection("jobs", ("pandaid", "endtime", "computingsite"))
    sharded = ShardedCollection(
        "jobs",
        ("pandaid", "endtime", "computingsite"),
        policy=TimeShardPolicy("endtime", slice_seconds),
    )
    plain.ingest(docs)
    sharded.ingest(docs)
    plain.freeze()
    sharded.freeze()
    return plain, sharded


class TestShardedCollection:
    def test_requires_policy(self):
        with pytest.raises(ValueError):
            ShardedCollection("jobs", ("endtime",), policy=None)

    def test_ingest_partitions_by_key(self):
        _, sharded = _pair()
        # endtimes 10/50 -> shard 0, 150 -> 1, 250 -> 2, None -> null
        assert sharded.n_shards == 4
        assert sharded.shard_keys() == [0, 1, 2, NULL_SHARD]

    def test_docs_keep_global_ids(self):
        plain, sharded = _pair()
        assert len(sharded) == len(plain)
        assert [sharded.get(i).pandaid for i in range(len(sharded))] == [
            plain.get(i).pandaid for i in range(len(plain))
        ]

    def test_range_parity_and_routing(self):
        plain, sharded = _pair()
        q = Range("endtime", gte=40.0, lt=200.0)
        assert set(sharded.search_ids(q).tolist()) == set(plain.search_ids(q).tolist())
        # search_ids output stays value-sorted like the plain collection
        assert sharded.search_ids(q).tolist() == plain.search_ids(q).tolist()

    def test_term_parity_on_key_and_non_key_fields(self):
        plain, sharded = _pair()
        for q in (Term("endtime", 150.0), Term("computingsite", "SITE-A"),
                  Term("pandaid", 3)):
            assert set(sharded.search_ids(q).tolist()) == set(
                plain.search_ids(q).tolist()
            )

    def test_bool_query_parity(self):
        plain, sharded = _pair()
        q = Bool(must=[Range("endtime", gte=0.0, lt=260.0),
                       Term("computingsite", "SITE-A")])
        assert sorted(sharded.search_ids(q).tolist()) == sorted(
            plain.search_ids(q).tolist()
        )

    def test_facade_surface_parity(self):
        plain, sharded = _pair()
        pi, si = plain.field_index("endtime"), sharded.field_index("endtime")
        assert si.term(150.0) == pi.term(150.0)
        assert si.terms([10.0, 250.0]) == pi.terms([10.0, 250.0])
        assert si.range(gte=40.0, lte=250.0) == pi.range(gte=40.0, lte=250.0)
        assert si.exists() == pi.exists()
        assert si.cardinality == pi.cardinality
        assert si.is_numeric and pi.is_numeric

    def test_facade_is_cached_and_live(self):
        _, sharded = _pair()
        idx = sharded.field_index("endtime")
        assert sharded.field_index("endtime") is idx
        before = idx.range(gte=0.0)
        sharded.append(_jobs(999.0))
        sharded.freeze()
        assert len(idx.range(gte=0.0)) == len(before) + 1

    def test_range_on_non_numeric_field_raises(self):
        _, sharded = _pair()
        with pytest.raises(TypeError):
            sharded.field_index("computingsite").range_ids(gte=0.0)

    def test_tail_append_does_not_rebuild_earlier_shards(self):
        _, sharded = _pair()
        before = FieldIndex.full_builds
        sharded.append(_jobs(260.0, 270.0))  # both land in shard 2
        sharded.freeze()
        grown = FieldIndex.full_builds - before
        # Only shard 2's indices re-sort; shards 0/1/null stay frozen.
        assert grown <= len(("pandaid", "endtime", "computingsite"))


# -- population strategy ----------------------------------------------------------


@st.composite
def population(draw):
    """A small telemetry snapshot with matchable structure.

    Jobs spread across the whole window (so any multi-shard config
    splits them); a drawn subset of each job's files gets a matching
    transfer, plus taskid-less background transfers that must never
    join.
    """
    jobs, files, transfers = [], [], []
    row_id = 1
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    for task in range(n_tasks):
        taskid = 100 + task
        label = draw(st.sampled_from(["user", "managed"]))
        for j in range(draw(st.integers(min_value=1, max_value=3))):
            pandaid = 1000 + task * 10 + j
            end = draw(st.floats(min_value=1.0, max_value=WINDOW - 1.0,
                                 allow_nan=False))
            site = draw(st.sampled_from(["SITE-A", "SITE-B", "UNKNOWN"]))
            n_files = draw(st.integers(min_value=1, max_value=3))
            jobs.append(make_job(pandaid=pandaid, jeditaskid=taskid, site=site,
                                 end=end, nin=n_files * 1000, label=label))
            for k in range(n_files):
                lfn = f"t{task}j{j}f{k}"
                files.append(make_file(pandaid=pandaid, jeditaskid=taskid,
                                       lfn=lfn, size=1000))
                if draw(st.booleans()):
                    start = max(end - draw(st.floats(min_value=1.0,
                                                     max_value=3600.0)), 0.5)
                    transfers.append(make_transfer(
                        row_id=row_id, lfn=lfn, size=1000, src=site, dst=site,
                        start=start, end=start + 10.0, jeditaskid=taskid))
                    row_id += 1
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        start = draw(st.floats(min_value=0.0, max_value=WINDOW - 1.0,
                               allow_nan=False))
        transfers.append(make_transfer(
            row_id=row_id, lfn=f"bg{row_id}", start=start, end=start + 5.0,
            jeditaskid=0, activity="Data Consolidation", download=False))
        row_id += 1
    return jobs, files, transfers


@st.composite
def window(draw):
    """A sub-window; shard boundaries at k*W/2 and k*W/7 fall inside it
    for most draws, so boundary-straddling is the common case."""
    t0 = draw(st.floats(min_value=0.0, max_value=WINDOW / 2, allow_nan=False))
    t1 = draw(st.floats(min_value=t0 + WINDOW / 4, max_value=WINDOW,
                        allow_nan=False))
    return t0, t1


def _sources(jobs, files, transfers):
    out = []
    for shard_seconds in SHARD_SECONDS:
        src = OpenSearchLike(shard_seconds=shard_seconds)
        src.ingest_batch(jobs=jobs, files=files, transfers=transfers)
        out.append(src)
    return out


# -- the parity property ----------------------------------------------------------


class TestShardParity:
    @given(population(), window())
    @settings(max_examples=40, deadline=None)
    def test_window_materialization_is_identical(self, pop, win):
        t0, t1 = win
        base, *rest = _sources(*pop)
        jobs, files, transfers, columns = base.materialize_window(t0, t1)
        for src in rest:
            got_jobs, got_files, got_transfers, got_columns = (
                src.materialize_window(t0, t1)
            )
            assert got_jobs == jobs
            assert got_files == files
            assert got_transfers == transfers
            assert np.array_equal(got_columns.jobs.pandaid, columns.jobs.pandaid)
            assert np.array_equal(got_columns.transfers.row_id,
                                  columns.transfers.row_id)

    @given(population(), window())
    @settings(max_examples=25, deadline=None)
    def test_match_reports_are_identical(self, pop, win):
        t0, t1 = win
        reports = [
            MatchingPipeline(src, known_sites=KNOWN_SITES).run(t0, t1)
            for src in _sources(*pop)
        ]
        base, *rest = reports
        for r in rest:
            for m in base.methods:
                assert r[m].matched_pairs() == base[m].matched_pairs()
                assert r[m] == base[m]
            assert r == base

    @given(population())
    @settings(max_examples=15, deadline=None)
    def test_streaming_accumulation_is_identical(self, pop):
        jobs, files, transfers = pop
        telemetry = DegradedTelemetry(jobs, files, transfers,
                                      ground_truth=GroundTruth())
        log = EventLog.from_telemetry(telemetry, 0.0, WINDOW)
        procs = []
        for shard_seconds in SHARD_SECONDS:
            proc = StreamProcessor(
                0.0, WINDOW, known_sites=KNOWN_SITES,
                source=OpenSearchLike(shard_seconds=shard_seconds),
            )
            proc.run(log.micro_batches(batch_seconds=WINDOW / 5))
            procs.append(proc)
        base, *rest = procs
        for proc in rest:
            assert proc.report() == base.report()

    def test_shard_counts_reports_partitioning(self):
        jobs, files, transfers = (
            _jobs(10.0, WINDOW / 2 + 10.0),
            [make_file(pandaid=1)],
            [make_transfer(row_id=1, start=10.0)],
        )
        src = OpenSearchLike(shard_seconds=WINDOW / 2)
        src.ingest_batch(jobs=jobs, files=files, transfers=transfers)
        counts = src.shard_counts()
        assert counts["jobs"] == 2
        assert counts["files"] == 1  # files stay unsharded
        assert counts["transfers"] == 1

    def test_sharded_ingest_lands_in_tail_shard_only(self):
        src = OpenSearchLike(shard_seconds=100.0)
        src.ingest_batch(
            jobs=_jobs(10.0, 150.0), files=[], transfers=[]
        )
        before = FieldIndex.full_builds
        src.ingest_batch(jobs=_jobs(180.0), files=[], transfers=[])
        grown = FieldIndex.full_builds - before
        assert grown <= len(OpenSearchLike.JOB_FIELDS)
