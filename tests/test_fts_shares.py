"""Tests for FTS per-activity link shares (background cannot starve
job-driven staging)."""

import pytest

from repro.rucio.activities import TransferActivity

from tests.test_rucio_fts import Rig


class TestActivityShares:
    def test_background_capped_below_link_capacity(self):
        rig = Rig(link_capacity=4)
        rig.fts.job_share = 0.5  # at most 2 concurrent background
        ds = rig.register_dataset(n_files=6, size=50 * 10**9)
        for fd in ds.file_dids:
            rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK",
                                       activity=TransferActivity.DATA_REBALANCING))
        # before any completes: only 2 background slots may be active
        assert rig.topo.network.active_on("CERN-PROD", "BNL-ATLAS") == 2
        rig.engine.run()
        assert len(rig.events) == 6
        assert all(e.success for e in rig.events)

    def test_job_driven_uses_full_capacity(self):
        rig = Rig(link_capacity=4)
        rig.fts.job_share = 0.5
        ds = rig.register_dataset(n_files=6, size=50 * 10**9)
        reqs = [rig.request(fd, "BNL-ATLAS_SCRATCHDISK",
                            activity=TransferActivity.ANALYSIS_DOWNLOAD,
                            pandaid=1, jeditaskid=2)
                for fd in ds.file_dids]
        rig.fts.submit_group(reqs, parallelism=6)
        assert rig.topo.network.active_on("CERN-PROD", "BNL-ATLAS") == 4
        rig.engine.run()
        assert len(rig.events) == 6

    def test_job_transfers_overtake_waiting_background(self):
        """A job-driven transfer submitted later still starts while the
        background backlog waits for its capped share."""
        rig = Rig(link_capacity=2)
        rig.fts.job_share = 0.5  # 1 background slot
        ds = rig.register_dataset(n_files=4, size=80 * 10**9)
        # flood with background
        for fd in ds.file_dids[:3]:
            rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK",
                                       activity=TransferActivity.DATA_REBALANCING))
        # then one job stage-in
        job_req = rig.request(ds.file_dids[3], "BNL-ATLAS_SCRATCHDISK",
                              activity=TransferActivity.ANALYSIS_DOWNLOAD,
                              pandaid=7, jeditaskid=8)
        rig.fts.submit(job_req)
        rig.engine.run()
        by_pandaid = {e.pandaid: e for e in rig.events}
        job_event = by_pandaid[7]
        background_events = [e for e in rig.events if e.pandaid == 0]
        # the job transfer starts before the *last* background one
        assert job_event.starttime < max(e.starttime for e in background_events)

    def test_full_job_share_serialises_background(self):
        rig = Rig(link_capacity=8)
        rig.fts.job_share = 1.0  # background cap = max(1, 0) = 1
        ds = rig.register_dataset(n_files=3, size=50 * 10**9)
        for fd in ds.file_dids:
            rig.fts.submit(rig.request(fd, "BNL-ATLAS_DATADISK",
                                       activity=TransferActivity.DATA_CONSOLIDATION))
        assert rig.topo.network.active_on("CERN-PROD", "BNL-ATLAS") == 1
        rig.engine.run()
        assert len(rig.events) == 3
