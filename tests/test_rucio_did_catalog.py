"""Tests for DIDs and the catalog."""

import pytest

from repro.rucio.catalog import DidCatalog
from repro.rucio.did import DID, ContainerDid, DatasetDid, DidType, FileDid


def f(name: str, size: int = 100, scope: str = "s") -> FileDid:
    return FileDid(did=DID(scope, name), size=size, dataset_name="ds", proddblock="ds")


class TestDID:
    def test_str_and_parse_roundtrip(self):
        d = DID("user.x", "file.root")
        assert DID.parse(str(d)) == d

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DID("", "n")
        with pytest.raises(ValueError):
            DID("s", "")

    def test_rejects_colon_in_scope(self):
        with pytest.raises(ValueError):
            DID("a:b", "n")

    def test_parse_rejects_plain_name(self):
        with pytest.raises(ValueError):
            DID.parse("no-colon")

    def test_hashable(self):
        assert len({DID("s", "a"), DID("s", "a"), DID("s", "b")}) == 2


class TestFileDid:
    def test_lfn_is_name(self):
        fd = f("myfile")
        assert fd.lfn == "myfile"
        assert fd.scope == "s"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileDid(did=DID("s", "n"), size=-1)


class TestDatasetDid:
    def test_attach(self):
        ds = DatasetDid(did=DID("s", "ds"))
        ds.attach(DID("s", "f1"))
        assert ds.n_files == 1

    def test_attach_duplicate_rejected(self):
        ds = DatasetDid(did=DID("s", "ds"))
        ds.attach(DID("s", "f1"))
        with pytest.raises(ValueError):
            ds.attach(DID("s", "f1"))

    def test_closed_dataset_rejects_attach(self):
        ds = DatasetDid(did=DID("s", "ds"))
        ds.close()
        with pytest.raises(RuntimeError):
            ds.attach(DID("s", "f1"))


class TestContainer:
    def test_self_containment_rejected(self):
        c = ContainerDid(did=DID("s", "c"))
        with pytest.raises(ValueError):
            c.attach(DID("s", "c"))


class TestCatalog:
    def test_register_and_lookup(self):
        cat = DidCatalog()
        fd = cat.register_file(f("f1"))
        assert cat.file(fd.did) is fd
        assert cat.did_type(fd.did) is DidType.FILE

    def test_duplicate_file_rejected(self):
        cat = DidCatalog()
        cat.register_file(f("f1"))
        with pytest.raises(ValueError):
            cat.register_file(f("f1"))

    def test_dataset_requires_registered_files(self):
        cat = DidCatalog()
        ds = DatasetDid(did=DID("s", "ds"), file_dids=[DID("s", "ghost")])
        with pytest.raises(ValueError):
            cat.register_dataset(ds)

    def test_dataset_files_in_order(self):
        cat = DidCatalog()
        fds = [cat.register_file(f(f"f{i}")) for i in range(3)]
        ds = DatasetDid(did=DID("s", "ds"), file_dids=[x.did for x in fds])
        cat.register_dataset(ds)
        assert [x.lfn for x in cat.dataset_files(ds.did)] == ["f0", "f1", "f2"]

    def test_attach_file_updates_reverse_index(self):
        cat = DidCatalog()
        fd = cat.register_file(f("f1"))
        ds = DatasetDid(did=DID("s", "ds"))
        cat.register_dataset(ds)
        cat.attach_file(ds.did, fd.did)
        assert cat.datasets_of_file(fd.did) == [ds.did]

    def test_container_resolution_recurses(self):
        cat = DidCatalog()
        fds = [cat.register_file(f(f"f{i}")) for i in range(4)]
        ds1 = DatasetDid(did=DID("s", "ds1"), file_dids=[fds[0].did, fds[1].did])
        ds2 = DatasetDid(did=DID("s", "ds2"), file_dids=[fds[2].did])
        cat.register_dataset(ds1)
        cat.register_dataset(ds2)
        inner = ContainerDid(did=DID("s", "inner"), child_dids=[ds2.did])
        cat.register_container(inner)
        outer = ContainerDid(did=DID("s", "outer"), child_dids=[ds1.did, inner.did])
        cat.register_container(outer)
        resolved = {x.lfn for x in cat.resolve_files(outer.did)}
        assert resolved == {"f0", "f1", "f2"}

    def test_container_with_unknown_child_rejected(self):
        cat = DidCatalog()
        c = ContainerDid(did=DID("s", "c"), child_dids=[DID("s", "ghost")])
        with pytest.raises(ValueError):
            cat.register_container(c)

    def test_resolve_file_did(self):
        cat = DidCatalog()
        fd = cat.register_file(f("f1"))
        assert cat.resolve_files(fd.did) == [fd]

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            DidCatalog().resolve_files(DID("s", "nope"))

    def test_total_bytes(self):
        cat = DidCatalog()
        fds = [cat.register_file(f(f"f{i}", size=10 * (i + 1))) for i in range(3)]
        ds = DatasetDid(did=DID("s", "ds"), file_dids=[x.did for x in fds])
        cat.register_dataset(ds)
        assert cat.total_bytes(ds.did) == 60

    def test_counts(self):
        cat = DidCatalog()
        cat.register_file(f("f1"))
        assert (cat.n_files, cat.n_datasets, cat.n_containers) == (1, 0, 0)

    def test_shared_file_in_two_datasets(self):
        cat = DidCatalog()
        fd = cat.register_file(f("shared"))
        for name in ("ds1", "ds2"):
            cat.register_dataset(DatasetDid(did=DID("s", name), file_dids=[fd.did]))
        assert len(cat.datasets_of_file(fd.did)) == 2
