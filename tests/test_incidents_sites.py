"""Tests for incident injection and per-site dashboards."""

import pytest

from repro.core.analysis.errors import ErrorFamily
from repro.core.analysis.sites import (
    build_dashboards,
    hottest_sites,
    importers_and_exporters,
)
from repro.grid.incidents import Incident, IncidentInjector
from repro.grid.presets import build_mini
from repro.sim.engine import Engine

from tests.helpers import make_job, make_transfer


class TestIncidentValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            Incident("X", 100.0, 100.0, "compute", 0.5)

    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            Incident("X", 0.0, 10.0, "compute", 1.0)
        with pytest.raises(ValueError):
            Incident("X", 0.0, 10.0, "compute", -0.1)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            Incident("X", 0.0, 10.0, "quantum", 0.5)


class TestComputeIncidents:
    def _setup(self):
        engine = Engine()
        topo = build_mini(seed=1)
        return engine, topo, IncidentInjector(engine, topo)

    def test_slots_shrink_and_restore(self):
        engine, topo, inj = self._setup()
        site = topo.site("BNL-ATLAS")
        orig_slots, orig_rel = site.compute_slots, site.reliability
        inj.schedule(Incident("BNL-ATLAS", 100.0, 200.0, "compute", 0.25))
        engine.run(until=150.0)
        assert site.compute_slots == max(1, int(orig_slots * 0.25))
        assert site.reliability < orig_rel
        engine.run(until=250.0)
        assert site.compute_slots == orig_slots
        assert site.reliability == orig_rel

    def test_unknown_site_rejected(self):
        engine, topo, inj = self._setup()
        with pytest.raises(KeyError):
            inj.schedule(Incident("GHOST", 0.0, 10.0, "compute", 0.5))

    def test_active_at(self):
        engine, topo, inj = self._setup()
        inj.schedule(Incident("BNL-ATLAS", 100.0, 200.0, "compute", 0.5))
        assert inj.active_at(150.0)
        assert not inj.active_at(50.0)
        assert not inj.active_at(200.0)


class TestNetworkIncidents:
    def test_bandwidth_reduced_during_window(self):
        engine = Engine()
        topo = build_mini(seed=1)
        inj = IncidentInjector(engine, topo)
        net = topo.network
        before = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 50.0)
        inj.schedule(Incident("BNL-ATLAS", 100.0, 200.0, "network", 0.1))
        during = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 150.0)
        after = net.effective_bandwidth("CERN-PROD", "BNL-ATLAS", 250.0)
        # the incident factor applies inside the window only
        clean_during = inj.network_hook._orig_effective("CERN-PROD", "BNL-ATLAS", 150.0)
        assert during == pytest.approx(max(64_000.0, clean_during * 0.1))
        assert after == inj.network_hook._orig_effective("CERN-PROD", "BNL-ATLAS", 250.0)
        assert before == inj.network_hook._orig_effective("CERN-PROD", "BNL-ATLAS", 50.0)

    def test_transfer_duration_reflects_incident(self):
        engine = Engine()
        topo = build_mini(seed=1)
        inj = IncidentInjector(engine, topo)
        net = topo.network
        clean = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 5e9, 50_000.0)
        inj.schedule(Incident("BNL-ATLAS", 0.0, 10**9, "network", 0.05))
        degraded = net.transfer_duration("CERN-PROD", "BNL-ATLAS", 5e9, 50_000.0)
        assert degraded > clean * 2

    def test_overlapping_incidents_take_worst(self):
        engine = Engine()
        topo = build_mini(seed=1)
        inj = IncidentInjector(engine, topo)
        inj.schedule(Incident("BNL-ATLAS", 0.0, 100.0, "network", 0.5))
        inj.schedule(Incident("BNL-ATLAS", 50.0, 150.0, "network", 0.2))
        assert inj.network_hook.factor("BNL-ATLAS", 75.0) == 0.2
        assert inj.network_hook.factor("BNL-ATLAS", 25.0) == 0.5
        assert inj.network_hook.factor("BNL-ATLAS", 125.0) == 0.2


class TestSiteDashboards:
    def _records(self):
        jobs = [
            make_job(pandaid=1, site="A", creation=0.0, start=100.0, end=200.0),
            make_job(pandaid=2, site="A", creation=0.0, start=300.0, end=400.0,
                     status="failed"),
            make_job(pandaid=3, site="B", creation=0.0, start=50.0, end=500.0),
        ]
        jobs[1].error_code = 1305
        transfers = [
            make_transfer(row_id=1, src="A", dst="A", size=100),
            make_transfer(row_id=2, src="A", dst="B", size=200),
            make_transfer(row_id=3, src="B", dst="A", size=50),
        ]
        return jobs, transfers

    def test_job_aggregation(self):
        jobs, transfers = self._records()
        boards = build_dashboards(jobs, transfers)
        a = boards["A"]
        assert a.n_jobs == 2 and a.n_failed == 1
        assert a.failure_rate == 0.5
        assert a.mean_queue == pytest.approx(200.0)

    def test_traffic_aggregation(self):
        jobs, transfers = self._records()
        boards = build_dashboards(jobs, transfers)
        a, b = boards["A"], boards["B"]
        assert a.bytes_local == 100
        assert a.bytes_out == 200 and a.bytes_in == 50
        assert b.bytes_in == 200 and b.bytes_out == 50
        assert a.net_flow == -150 and b.net_flow == 150

    def test_error_family(self):
        jobs, transfers = self._records()
        boards = build_dashboards(jobs, transfers)
        assert boards["A"].dominant_error_family is ErrorFamily.COMPUTE

    def test_hottest_sites_ranking(self):
        jobs = [make_job(pandaid=i, site="HOT", status="failed") for i in range(12)]
        jobs += [make_job(pandaid=100 + i, site="COOL") for i in range(12)]
        boards = build_dashboards(jobs, [])
        hottest = hottest_sites(boards, by="failure_rate", top=1)
        assert hottest[0].site == "HOT"

    def test_importers_exporters(self):
        jobs, transfers = self._records()
        boards = build_dashboards(jobs, transfers)
        importers, exporters = importers_and_exporters(boards)
        assert importers[0].site == "B"
        assert exporters[0].site == "A"

    def test_on_study(self, small_telemetry):
        boards = build_dashboards(small_telemetry.jobs, small_telemetry.transfers)
        assert len(boards) > 10
        total_jobs = sum(b.n_jobs for b in boards.values())
        assert total_jobs == len(small_telemetry.jobs)


class TestIncidentCampaign:
    def test_incident_degrades_site_outcomes(self):
        """End-to-end: a long compute incident at a busy site raises its
        failure rate relative to the no-incident twin run."""
        from repro.scenarios.runtime import HarnessConfig, SimulationHarness
        from repro.workload.generator import WorkloadConfig

        def run(with_incident: bool) -> float:
            h = SimulationHarness(
                HarnessConfig(
                    seed=17,
                    workload=WorkloadConfig(
                        duration=12 * 3600.0,
                        analysis_tasks_per_hour=6.0,
                        production_tasks_per_hour=0.5,
                        background_transfers_per_hour=10.0,
                    ),
                    drain=24 * 3600.0,
                ),
                topology=build_mini(seed=17),
            )
            if with_incident:
                inj = IncidentInjector(h.engine, h.topology)
                inj.schedule(Incident("CERN-PROD", 0.0, 36 * 3600.0, "compute", 0.3))
            h.run()
            cern_jobs = [j for j in h.collector.completed_jobs
                         if j.computing_site == "CERN-PROD"]
            if not cern_jobs:
                return 0.0
            return sum(1 for j in cern_jobs if not j.succeeded) / len(cern_jobs)

        assert run(True) > run(False)
