"""Tests for the window-sensitivity analysis (§4.2)."""

import pytest

from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.windows import (
    growing_window_curve,
    saturation_ratio,
    sliding_window_curve,
)


@pytest.fixture(scope="module")
def pipeline(small_study):
    return MatchingPipeline(
        small_study.source, known_sites=small_study.harness.known_site_names())


@pytest.fixture(scope="module")
def window(small_study):
    return small_study.harness.window


class TestGrowingWindow:
    def test_curve_shape(self, pipeline, window):
        t0, t1 = window
        curve = growing_window_curve(pipeline, t0, t1, n_points=4)
        assert len(curve) == 4
        assert curve[-1].t1 == pytest.approx(t1)
        lengths = [p.length for p in curve]
        assert lengths == sorted(lengths)

    def test_job_population_monotone(self, pipeline, window):
        """Longer windows see at least as many completed jobs (§4.2:
        only jobs completed inside the interval are reported)."""
        t0, t1 = window
        curve = growing_window_curve(pipeline, t0, t1, n_points=5)
        jobs = [p.n_jobs for p in curve]
        assert jobs == sorted(jobs)

    def test_matches_monotone(self, pipeline, window):
        t0, t1 = window
        curve = growing_window_curve(pipeline, t0, t1, n_points=5)
        matched = [p.n_matched_jobs for p in curve]
        assert matched == sorted(matched)

    def test_short_windows_lose_coverage(self, pipeline, window):
        """The §4.2 sizing rule: half-length windows undershoot."""
        t0, t1 = window
        curve = growing_window_curve(pipeline, t0, t1, n_points=6)
        assert saturation_ratio(curve) < 1.0

    def test_rejects_too_few_points(self, pipeline, window):
        t0, t1 = window
        with pytest.raises(ValueError):
            growing_window_curve(pipeline, t0, t1, n_points=1)


class TestSlidingWindow:
    def test_windows_tile_the_range(self, pipeline, window):
        t0, t1 = window
        length = (t1 - t0) / 4
        curve = sliding_window_curve(pipeline, t0, t1, length)
        assert len(curve) == 4
        assert all(p.length == pytest.approx(length) for p in curve)

    def test_sliding_total_below_full_window(self, pipeline, window):
        """Tiling the range with disjoint windows matches fewer jobs
        than one full-length query: boundary pairs are lost."""
        t0, t1 = window
        tiles = sliding_window_curve(pipeline, t0, t1, (t1 - t0) / 4)
        tiled_total = sum(p.n_matched_jobs for p in tiles)
        full = growing_window_curve(pipeline, t0, t1, n_points=2)[-1]
        assert tiled_total <= full.n_matched_jobs

    def test_rejects_bad_length(self, pipeline, window):
        t0, t1 = window
        with pytest.raises(ValueError):
            sliding_window_curve(pipeline, t0, t1, 0.0)

    def test_overlapping_step(self, pipeline, window):
        t0, t1 = window
        length = (t1 - t0) / 2
        curve = sliding_window_curve(pipeline, t0, t1, length, step=length / 2)
        assert len(curve) == 3
