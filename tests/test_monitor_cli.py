"""Tests for the streaming anomaly monitor and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core.anomaly.monitor import (
    Alert,
    AlertKind,
    MonitorConfig,
    StreamingAnomalyMonitor,
)
from repro.core.matching.base import JobMatch

from tests.helpers import make_job, make_transfer


def jm(transfers, **kw) -> JobMatch:
    return JobMatch(job=make_job(**kw), transfers=transfers)


class TestMonitorJobAlerts:
    def test_quiet_job_no_alerts(self):
        mon = StreamingAnomalyMonitor()
        raised = mon.observe_match(jm(
            [make_transfer(start=0.0, end=5.0)],
            creation=0.0, start=1000.0, end=2000.0))
        assert raised == []
        assert mon.jobs_observed == 1

    def test_high_transfer_time_alert(self):
        mon = StreamingAnomalyMonitor()
        raised = mon.observe_match(jm(
            [make_transfer(start=0.0, end=900.0)],
            creation=0.0, start=1000.0, end=2000.0))
        kinds = {a.kind for a in raised}
        assert AlertKind.HIGH_TRANSFER_TIME in kinds

    def test_spanning_alert(self):
        mon = StreamingAnomalyMonitor()
        raised = mon.observe_match(jm(
            [make_transfer(start=500.0, end=1500.0)],
            creation=0.0, start=1000.0, end=2000.0))
        assert any(a.kind is AlertKind.SPANNING_TRANSFER for a in raised)

    def test_sequential_alert(self):
        mon = StreamingAnomalyMonitor()
        raised = mon.observe_match(jm(
            [make_transfer(row_id=1, start=0.0, end=100.0),
             make_transfer(row_id=2, start=100.0, end=200.0)],
            creation=0.0, start=1000.0, end=2000.0))
        assert any(a.kind is AlertKind.SEQUENTIAL_STAGING for a in raised)

    def test_spread_alert(self):
        mon = StreamingAnomalyMonitor(MonitorConfig(spread_threshold=5.0))
        raised = mon.observe_match(jm(
            [make_transfer(row_id=1, size=100000, start=0.0, end=1.0),
             make_transfer(row_id=2, size=1000, start=1.0, end=10.0)],
            creation=0.0, start=1000.0, end=2000.0))
        assert any(a.kind is AlertKind.THROUGHPUT_SPREAD for a in raised)

    def test_unstarted_job_safe(self):
        mon = StreamingAnomalyMonitor()
        assert mon.observe_match(jm([], start=None, end=None)) == []


class TestMonitorTransferAlerts:
    def test_redundant_detected(self):
        mon = StreamingAnomalyMonitor()
        assert mon.observe_transfer(make_transfer(row_id=1, start=100.0)) is None
        alert = mon.observe_transfer(make_transfer(row_id=2, start=2000.0, end=2100.0))
        assert alert is not None and alert.kind is AlertKind.REDUNDANT_TRANSFER

    def test_outside_ttl_not_redundant(self):
        mon = StreamingAnomalyMonitor(MonitorConfig(redundancy_ttl=100.0))
        mon.observe_transfer(make_transfer(row_id=1, start=0.0))
        assert mon.observe_transfer(
            make_transfer(row_id=2, start=10_000.0, end=10_100.0)) is None

    def test_uploads_ignored(self):
        mon = StreamingAnomalyMonitor()
        t = make_transfer(download=False, upload=True)
        assert mon.observe_transfer(t) is None
        assert mon.observe_transfer(t) is None


class TestMonitorHealth:
    def test_site_rate_rises_with_alerts(self):
        mon = StreamingAnomalyMonitor()
        noisy = jm([make_transfer(start=0.0, end=900.0)],
                   creation=0.0, start=1000.0, end=2000.0, site="HOT")
        for _ in range(10):
            mon.observe_match(noisy)
        assert mon.site_alert_rate("HOT") > 0.3
        assert mon.worst_sites()[0][0] == "HOT"

    def test_counts_and_summary(self):
        mon = StreamingAnomalyMonitor()
        mon.observe_match(jm([make_transfer(start=0.0, end=900.0)],
                             creation=0.0, start=1000.0, end=2000.0))
        counts = mon.counts_by_kind()
        assert counts[AlertKind.HIGH_TRANSFER_TIME] == 1
        assert "alerts" in mon.summary()

    def test_on_study(self, small_report):
        mon = StreamingAnomalyMonitor()
        for m in small_report["rm2"].matched_jobs():
            mon.observe_match(m)
        assert mon.jobs_observed == small_report["rm2"].n_matched_jobs
        # some anomaly classes should appear in a realistic campaign
        assert len(mon.alerts) > 0


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("simulate", "match", "anomalies", "growth", "ablation", "export"):
            args = parser.parse_args([cmd] if cmd == "growth" else [cmd, "--days", "1"])
            assert callable(args.fn)

    def test_growth_runs(self, capsys):
        assert main(["growth"]) == 0
        out = capsys.readouterr().out
        assert "2024" in out and "EB" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_tiny(self, capsys):
        assert main(["simulate", "--days", "0.1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out

    def test_export_tiny(self, tmp_path, capsys):
        assert main(["export", "--days", "0.1", "--seed", "1",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "transfers.csv").exists()
        assert (tmp_path / "matching.json").exists()
