"""Tests for the tape system, carousel integration, and the reaper."""

from typing import List

import numpy as np
import pytest

from repro.grid.presets import build_mini
from repro.grid.rse import RseKind, rse_name
from repro.ids import IdFactory
from repro.rucio.activities import TransferActivity
from repro.rucio.catalog import DidCatalog
from repro.rucio.did import DID, DatasetDid, FileDid
from repro.rucio.fts import TransferService
from repro.rucio.reaper import Reaper
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.rucio.selector import ReplicaSelector
from repro.rucio.tape import TapeSystem
from repro.rucio.transfer import TransferEvent
from repro.sim.engine import Engine


class Rig:
    def __init__(self, seed: int = 1, tape_failure: float = 0.0):
        self.engine = Engine()
        self.topo = build_mini(seed=seed)
        self.ids = IdFactory()
        self.catalog = DidCatalog()
        self.replicas = ReplicaRegistry(self.topo)
        self.events: List[TransferEvent] = []
        self.fts = TransferService(
            self.engine, self.topo, self.replicas, self.ids,
            self.events.append, np.random.default_rng(seed), failure_rate=0.0,
        )
        self.tape = TapeSystem(
            self.engine, self.topo, self.replicas, self.ids,
            self.events.append, np.random.default_rng(seed),
            failure_rate=tape_failure,
        )
        self.rules = RuleEngine(
            self.topo, self.catalog, self.replicas, self.fts, self.ids, tape=self.tape)

    def file_on_tape(self, site: str = "CERN-PROD", size: int = 10**9) -> FileDid:
        f = FileDid(did=DID("mc", self.ids.make_lfn("mc")), size=size,
                    dataset_name="ds", proddblock="ds")
        self.catalog.register_file(f)
        self.replicas.add(f.did, rse_name(site, RseKind.TAPE), size)
        return f

    def dataset_on_tape(self, n: int = 2, site: str = "CERN-PROD") -> DatasetDid:
        ds = DatasetDid(did=DID("mc", f"ds{self.ids.next_jeditaskid()}"))
        for _ in range(n):
            f = self.file_on_tape(site)
            ds.file_dids.append(f.did)
        self.catalog.register_dataset(ds)
        return ds


class TestTapeSystem:
    def test_stage_lands_on_buffer(self):
        rig = Rig()
        f = rig.file_on_tape()
        done = []
        rig.tape.stage(f.did, f.size, "CERN-PROD_TAPE", on_complete=done.append)
        rig.engine.run()
        assert done == [True]
        assert rig.replicas.get(f.did, "CERN-PROD_DATADISK") is not None

    def test_stage_emits_staging_event(self):
        rig = Rig()
        f = rig.file_on_tape()
        rig.tape.stage(f.did, f.size, "CERN-PROD_TAPE")
        rig.engine.run()
        assert len(rig.events) == 1
        ev = rig.events[0]
        assert ev.activity is TransferActivity.STAGING
        assert ev.source_site == ev.destination_site == "CERN-PROD"
        assert ev.pandaid == 0

    def test_duration_includes_mount_and_read(self):
        rig = Rig()
        f = rig.file_on_tape(size=3 * 10**9)
        rig.tape.stage(f.did, f.size, "CERN-PROD_TAPE")
        rig.engine.run()
        ev = rig.events[0]
        expected = rig.tape.mount_seconds + f.size / rig.tape.drive_bandwidth
        assert ev.duration == pytest.approx(expected)

    def test_drive_pool_limits_concurrency(self):
        rig = Rig()
        rig.tape.drives_per_rse = 1
        files = [rig.file_on_tape() for _ in range(3)]
        for f in files:
            rig.tape.stage(f.did, f.size, "CERN-PROD_TAPE")
        assert rig.tape.queue_depth("CERN-PROD_TAPE") == 2
        rig.engine.run()
        spans = sorted((e.starttime, e.endtime) for e in rig.events)
        for (_, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9

    def test_non_tape_rse_rejected(self):
        rig = Rig()
        f = rig.file_on_tape()
        with pytest.raises(ValueError):
            rig.tape.stage(f.did, f.size, "CERN-PROD_DATADISK")

    def test_missing_tape_replica_rejected(self):
        rig = Rig()
        f = FileDid(did=DID("mc", "ghost"), size=1)
        rig.catalog.register_file(f)
        with pytest.raises(KeyError):
            rig.tape.stage(f.did, 1, "CERN-PROD_TAPE")

    def test_failed_recall_reports(self):
        rig = Rig(tape_failure=1.0)
        f = rig.file_on_tape()
        done = []
        rig.tape.stage(f.did, f.size, "CERN-PROD_TAPE", on_complete=done.append)
        rig.engine.run()
        assert done == [False]
        assert not rig.events[0].success
        assert rig.replicas.get(f.did, "CERN-PROD_DATADISK") is None


class TestSelectorSkipsTape:
    def test_tape_only_file_has_no_source(self):
        rig = Rig()
        f = rig.file_on_tape()
        sel = ReplicaSelector(rig.topo, rig.replicas)
        assert sel.choose(f.did, "BNL-ATLAS", now=0.0) is None

    def test_disk_copy_selected_over_tape(self):
        rig = Rig()
        f = rig.file_on_tape()
        rig.replicas.add(f.did, "NDGF-T1_DATADISK", f.size)
        sel = ReplicaSelector(rig.topo, rig.replicas)
        choice = sel.choose(f.did, "BNL-ATLAS", now=0.0)
        assert choice is not None and choice.source_rse == "NDGF-T1_DATADISK"


class TestCarouselRule:
    def test_rule_stages_then_transfers(self):
        rig = Rig()
        ds = rig.dataset_on_tape(n=2, site="CERN-PROD")
        rule = rig.rules.pin_dataset_at_site(
            ds.did, "BNL-ATLAS", now=0.0,
            activity=TransferActivity.PRODUCTION_DOWNLOAD, jeditaskid=5)
        rig.engine.run()
        stagings = [e for e in rig.events if e.activity is TransferActivity.STAGING]
        transfers = [e for e in rig.events
                     if e.activity is TransferActivity.PRODUCTION_DOWNLOAD]
        assert len(stagings) == 2 and len(transfers) == 2
        # chaining: each transfer starts after its recall finished
        assert min(t.starttime for t in transfers) >= min(s.endtime for s in stagings)
        assert rig.rules.satisfied(rule)

    def test_rule_to_buffer_site_needs_no_transfer(self):
        rig = Rig()
        ds = rig.dataset_on_tape(n=2, site="CERN-PROD")
        rule = rig.rules.pin_dataset_at_site(ds.did, "CERN-PROD", now=0.0, jeditaskid=5)
        rig.engine.run()
        assert all(e.activity is TransferActivity.STAGING for e in rig.events)
        assert rig.rules.satisfied(rule)

    def test_without_tape_system_no_stage(self):
        rig = Rig()
        rig.rules.tape = None
        ds = rig.dataset_on_tape(n=1)
        rig.rules.pin_dataset_at_site(ds.did, "BNL-ATLAS", now=0.0)
        rig.engine.run()
        # The wide-area transfer fails (no disk source, selector skips tape).
        assert any(not e.success for e in rig.events)


class TestReaper:
    def _reaper(self, rig: Rig, **kw) -> Reaper:
        return Reaper(rig.engine, rig.topo, rig.replicas, rig.rules, **kw)

    def test_scratch_purged_after_grace(self):
        rig = Rig()
        f = FileDid(did=DID("u", "f1"), size=100)
        rig.catalog.register_file(f)
        rig.replicas.add(f.did, "CERN-PROD_SCRATCHDISK", 100, now=0.0)
        reaper = self._reaper(rig, scratch_grace=3600.0)
        rig.engine.clock.advance_to(7200.0)
        assert reaper.sweep() == 1
        assert rig.replicas.get(f.did, "CERN-PROD_SCRATCHDISK") is None
        assert reaper.stats.freed_bytes == 100

    def test_scratch_kept_within_grace(self):
        rig = Rig()
        f = FileDid(did=DID("u", "f1"), size=100)
        rig.catalog.register_file(f)
        rig.replicas.add(f.did, "CERN-PROD_SCRATCHDISK", 100, now=0.0)
        reaper = self._reaper(rig, scratch_grace=3600.0)
        rig.engine.clock.advance_to(100.0)
        assert reaper.sweep() == 0

    def test_protected_replica_survives(self):
        rig = Rig()
        f = FileDid(did=DID("u", "f1"), size=100)
        rig.catalog.register_file(f)
        ds = DatasetDid(did=DID("u", "ds"), file_dids=[f.did])
        rig.catalog.register_dataset(ds)
        rig.replicas.add(f.did, "CERN-PROD_SCRATCHDISK", 100, now=0.0)
        rig.rules.add_rule(ds.did, ["CERN-PROD_SCRATCHDISK"], now=0.0,
                           lifetime=10_000.0, trigger_transfers=False)
        reaper = self._reaper(rig, scratch_grace=3600.0)
        rig.engine.clock.advance_to(7200.0)
        assert reaper.sweep() == 0
        # after the rule expires the replica goes
        rig.engine.clock.advance_to(20_000.0)
        assert reaper.sweep() == 1

    def test_datadisk_watermark_eviction(self):
        rig = Rig()
        rse = rig.topo.rse("CERN-PROD_DATADISK")
        rse.capacity_bytes = 1000.0
        for i in range(10):
            f = FileDid(did=DID("u", f"f{i}"), size=95)
            rig.catalog.register_file(f)
            rig.replicas.add(f.did, rse.name, 95, now=float(i))
        reaper = self._reaper(rig, datadisk_watermark=0.85, datadisk_target=0.5)
        removed = reaper.sweep()
        assert removed >= 4
        assert rse.fill_fraction <= 0.55
        # oldest first: f0 gone, newest survives
        assert rig.replicas.get(DID("u", "f0"), rse.name) is None
        assert rig.replicas.get(DID("u", "f9"), rse.name) is not None

    def test_periodic_start_idempotent(self):
        rig = Rig()
        reaper = self._reaper(rig, interval=100.0)
        reaper.start()
        reaper.start()
        rig.engine.run(until=450.0)
        assert reaper.stats.sweeps == 4
