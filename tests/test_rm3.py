"""Tests for the RM3 scored matcher (``repro.core.matching.rm3``).

Three contracts:

* **engine parity** — the columnar score kernel is bit-identical to
  the row reference for any window and any parameterization (hypothesis
  sweeps over degraded windows and thresholds);
* **streaming parity** — the incremental per-close delta scoring
  accumulates to exactly the batch result under shuffled delivery and
  arbitrary micro-batch sizes (given sufficient lateness);
* **threshold semantics** — recall is non-increasing in the threshold,
  and at threshold 0 RM3's kept pairs are a superset of every binary
  method's on the same window.

Plus the evaluation-hardening satellite: defined vacuous
precision/recall, out-of-window assertion accounting, F1, and the
RM2-style unknown-site recovery scoring.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnarIndex, supports_columnar
from repro.core.matching import (
    DEFAULT_RM3_THRESHOLD,
    ExactMatcher,
    RM1Matcher,
    RM2Matcher,
    RM3Matcher,
    evaluate_against_truth,
    recover_unknown_sites,
    visible_true_pairs,
)
from repro.core.matching.base import CandidateIndex, JobMatch, MatchResult
from repro.exec import SerialExecutor, WindowPlan
from repro.exec.executor import make_matchers
from repro.metastore.opensearch import OpenSearchLike
from repro.stream import EventKind, EventLog, StreamProcessor
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_file, make_job, make_transfer, matching_triple


KNOWN = {"SITE-A", "SITE-B"}

SITES = st.sampled_from(["SITE-A", "SITE-B", "", UNKNOWN_SITE])
LFNS = st.sampled_from(["f0", "f1", "f2", "f3"])
TASKIDS = st.sampled_from([0, 100, 200])
SIZES = st.sampled_from([500, 1000])
DATASETS = st.sampled_from(["ds", "ds2"])


def rm3_matchers():
    """A parameter spread: default, extreme thresholds, odd scales."""
    return [
        RM3Matcher(KNOWN),
        RM3Matcher(KNOWN, threshold=0.0),
        RM3Matcher(KNOWN, threshold=0.3),
        RM3Matcher(set(), threshold=0.55),
        RM3Matcher(KNOWN, threshold=0.9, tau=600.0, rho=0.1),
        RM3Matcher(KNOWN, threshold=0.5, site_prior=0.8, site_contra=0.0),
    ]


@st.composite
def rm3_windows(draw):
    """Degraded windows plus the axes RM3 actually scores on: varied
    creation times (time feature), set totals that miss the declared
    bytes (size feature), and every site-label pathology."""
    jobs, files, transfers = [], [], []
    for i in range(draw(st.integers(1, 4))):
        tid = draw(TASKIDS)
        jobs.append(make_job(
            pandaid=i + 1,
            jeditaskid=tid,
            site=draw(SITES),
            creation=draw(st.floats(0.0, 4000.0, allow_nan=False)),
            end=draw(st.one_of(st.none(), st.floats(0.0, 5000.0, allow_nan=False))),
            nin=draw(st.sampled_from([0, 1000, 1500, 2000, 3000])),
            nout=draw(st.sampled_from([0, 1000])),
        ))
        for _ in range(draw(st.integers(0, 3))):
            files.append(make_file(
                pandaid=i + 1,
                jeditaskid=tid,
                lfn=draw(LFNS),
                dataset=draw(DATASETS),
                size=draw(SIZES),
            ))
    for _ in range(draw(st.integers(0, 10))):
        transfers.append(make_transfer(
            row_id=draw(st.integers(1, 8)),  # duplicates allowed
            lfn=draw(LFNS),
            dataset=draw(DATASETS),
            size=draw(SIZES),
            jeditaskid=draw(TASKIDS),
            src=draw(SITES),
            dst=draw(SITES),
            download=draw(st.booleans()),
            upload=draw(st.booleans()),
            start=draw(st.floats(0.0, 5000.0, allow_nan=False)),
        ))
    return jobs, files, transfers


def assert_rm3_engines_agree(jobs, files, transfers, matchers=None):
    row_index = CandidateIndex(files, transfers)
    col_index = ColumnarIndex(jobs, files, transfers)
    for matcher in matchers or rm3_matchers():
        row = matcher.run(jobs, row_index, n_transfers_considered=7)
        col = col_index.run(matcher, n_transfers_considered=7)
        assert col.matched_pairs() == row.matched_pairs()
        assert [
            (m.job.pandaid, [t.row_id for t in m.transfers]) for m in col.matches
        ] == [
            (m.job.pandaid, [t.row_id for t in m.transfers]) for m in row.matches
        ]
        assert col == row  # full dataclass equality


# -- engine lowering --------------------------------------------------------------


class TestLowering:
    def test_rm3_supported(self):
        for m in rm3_matchers():
            assert supports_columnar(m)

    def test_make_matchers_registry(self):
        ms = make_matchers(["exact", "rm3"], KNOWN, rm3_threshold=0.4)
        assert [m.name for m in ms] == ["exact", "rm3"]
        assert ms[1].threshold == 0.4
        assert make_matchers(["rm3"], KNOWN)[0].threshold == DEFAULT_RM3_THRESHOLD
        with pytest.raises(ValueError):
            make_matchers(["rm9"], KNOWN)

    def test_overridden_scoring_hook_not_lowered(self):
        class Tweaked(RM3Matcher):
            name = "rm3x"

            def time_feature(self, t, job):
                return 1.0

        assert not supports_columnar(Tweaked(KNOWN))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RM3Matcher(KNOWN, threshold=-0.1)
        with pytest.raises(ValueError):
            RM3Matcher(KNOWN, tau=0.0)
        with pytest.raises(ValueError):
            RM3Matcher(KNOWN, site_prior=0.2, site_contra=0.5)


# -- row vs columnar parity -------------------------------------------------------


class TestEngineParity:
    def test_clean_triple(self):
        job, files, transfers = matching_triple()
        assert_rm3_engines_agree([job], files, transfers)

    def test_empty_window(self):
        assert_rm3_engines_agree([], [], [])

    @given(rm3_windows())
    @settings(max_examples=80, deadline=None)
    def test_degraded_windows(self, window):
        jobs, files, transfers = window
        assert_rm3_engines_agree(jobs, files, transfers)

    @given(rm3_windows(), st.floats(0.0, 1.2, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_thresholds(self, window, threshold):
        jobs, files, transfers = window
        assert_rm3_engines_agree(
            jobs, files, transfers, matchers=[RM3Matcher(KNOWN, threshold=threshold)]
        )


# -- threshold semantics ----------------------------------------------------------


class TestThresholdSemantics:
    @given(rm3_windows())
    @settings(max_examples=40, deadline=None)
    def test_kept_pairs_shrink_as_threshold_rises(self, window):
        jobs, files, transfers = window
        index = ColumnarIndex(jobs, files, transfers)
        previous = None
        for threshold in (0.0, 0.25, 0.5, 0.75, 1.0):
            pairs = set(
                index.run(
                    RM3Matcher(KNOWN, threshold=threshold), n_transfers_considered=0
                ).matched_pairs()
            )
            if previous is not None:
                assert pairs <= previous  # recall non-increasing in threshold
            previous = pairs

    @given(rm3_windows())
    @settings(max_examples=40, deadline=None)
    def test_threshold_zero_superset_of_binary_ladder(self, window):
        jobs, files, transfers = window
        index = ColumnarIndex(jobs, files, transfers)
        rm3_pairs = set(
            index.run(RM3Matcher(KNOWN, threshold=0.0), n_transfers_considered=0)
            .matched_pairs()
        )
        for m in (ExactMatcher(KNOWN), RM1Matcher(KNOWN), RM2Matcher(KNOWN)):
            assert set(index.run(m, n_transfers_considered=0).matched_pairs()) <= rm3_pairs

    def test_undegraded_default_threshold_keeps_exact_matches(self):
        job, files, transfers = matching_triple()
        index = ColumnarIndex([job], files, transfers)
        exact = set(index.run(ExactMatcher(KNOWN), n_transfers_considered=0).matched_pairs())
        rm3 = set(index.run(RM3Matcher(KNOWN), n_transfers_considered=0).matched_pairs())
        assert exact and exact == rm3

    def test_partial_candidate_set_survives_where_exact_vetoes(self):
        """One set member lost to degradation: Exact's whole-set size
        check vetoes the remaining members; RM3 scores each candidate
        on its own (exact per-candidate sizes -> score 1.0)."""
        job, files, transfers = matching_triple()  # nin = 3 x 1000
        partial = transfers[:2]  # degradation dropped one member
        index = ColumnarIndex([job], files, partial)
        assert index.run(ExactMatcher(KNOWN), n_transfers_considered=0).matched_pairs() == []
        kept = index.run(RM3Matcher(KNOWN), n_transfers_considered=0).matched_pairs()
        assert kept == [(job.pandaid, t.row_id) for t in partial]

    def test_size_drifted_pair_recovered_where_rm2_join_misses(self):
        """The recall mechanism: size imprecision breaks the Algorithm-1
        attribute-equality join, so RM2 never even sees the candidate;
        RM3's relaxed join admits it and the mismatch only dampens the
        score (rel = 64/1000 -> f_size ~ 0.89)."""
        job, files, transfers = matching_triple()
        drifted = [
            make_transfer(row_id=t.row_id, lfn=t.lfn, size=t.file_size + 64,
                          src=t.source_site, dst=t.destination_site,
                          start=t.starttime)
            for t in transfers
        ]
        index = ColumnarIndex([job], files, drifted)
        assert index.run(RM2Matcher(KNOWN), n_transfers_considered=0).matched_pairs() == []
        kept = index.run(RM3Matcher(KNOWN), n_transfers_considered=0).matched_pairs()
        assert kept == [(job.pandaid, t.row_id) for t in drifted]

    def test_weak_combined_evidence_rejected(self):
        """The precision mechanism: defects multiply.  A heavy size
        mismatch (partial Direct-IO read: rel = 0.85 -> f_size ~ 0.37)
        survives on its own, but combined with an uncertain site label
        (x 0.6) falls below the default threshold — where RM2-style
        binary rules would treat the two candidates identically."""
        job, files, transfers = matching_triple()

        def partial_read(t, dst):
            return make_transfer(row_id=t.row_id, lfn=t.lfn,
                                 size=int(t.file_size * 0.15),
                                 src=t.source_site, dst=dst, start=t.starttime)

        strict = [partial_read(t, "SITE-A") for t in transfers]
        uncertain = [partial_read(t, UNKNOWN_SITE) for t in transfers]
        rm3 = RM3Matcher(KNOWN)
        assert len(
            ColumnarIndex([job], files, strict)
            .run(rm3, n_transfers_considered=0).matched_pairs()
        ) == 3
        assert ColumnarIndex([job], files, uncertain).run(
            rm3, n_transfers_considered=0
        ).matched_pairs() == []

    def test_uncertain_site_admitted_contradiction_rejected(self):
        job, files, transfers = matching_triple()
        unknown = [
            make_transfer(row_id=t.row_id, lfn=t.lfn, size=t.file_size,
                          src=t.source_site, dst=UNKNOWN_SITE, start=t.starttime)
            for t in transfers
        ]
        contradicting = [
            make_transfer(row_id=t.row_id, lfn=t.lfn, size=t.file_size,
                          src=t.source_site, dst="SITE-B", start=t.starttime)
            for t in transfers
        ]
        rm3 = RM3Matcher(KNOWN)
        index_u = ColumnarIndex([job], files, unknown)
        assert len(index_u.run(rm3, n_transfers_considered=0).matched_pairs()) == 3
        index_c = ColumnarIndex([job], files, contradicting)
        assert index_c.run(rm3, n_transfers_considered=0).matched_pairs() == []

    def test_background_transfer_penalized_by_time_feature(self):
        """Same file moved long before the job existed scores low."""
        job, files, transfers = matching_triple()
        job = make_job(creation=90_000.0, end=100_000.0, nin=3000)
        early = [
            make_transfer(row_id=t.row_id, lfn=t.lfn, size=t.file_size,
                          start=10.0 + t.row_id)  # ~25h before creation
            for t in transfers
        ]
        index = ColumnarIndex([job], files, early)
        assert index.run(RM3Matcher(KNOWN), n_transfers_considered=0).matched_pairs() == []
        # but not vetoed: a permissive threshold still sees them
        kept = index.run(RM3Matcher(KNOWN, threshold=0.01), n_transfers_considered=0)
        assert len(kept.matched_pairs()) == 3


# -- streaming parity -------------------------------------------------------------


T0, T1 = 0.0, 10_000.0


def _ingest(jobs, files, transfers) -> OpenSearchLike:
    source = OpenSearchLike()
    source.jobs.ingest(jobs)
    source.files.ingest(files)
    source.transfers.ingest(transfers)
    source.store.freeze()
    source.warm_interner()
    return source


def _disorder(events) -> float:
    high, bound = float("-inf"), 0.0
    for e in events:
        if e.kind is EventKind.TRANSFER:
            high = max(high, e.time)
            bound = max(bound, high - e.time)
    return bound


class TestStreamingParity:
    @given(
        rm3_windows(),
        st.integers(0, 2**32 - 1),
        st.integers(1, 7),
        st.sampled_from([0.0, 0.3, DEFAULT_RM3_THRESHOLD, 0.8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_shuffled_replay_accumulates_batch_state(
        self, window, seed, batch_events, threshold
    ):
        jobs, files, transfers = window
        telemetry = SimpleNamespace(jobs=jobs, files=files, transfers=transfers)
        events = list(EventLog.from_telemetry(telemetry, T0, T1))
        random.Random(seed).shuffle(events)

        matchers = [RM3Matcher(KNOWN, threshold=threshold), RM2Matcher(KNOWN)]
        processor = StreamProcessor(
            T0, T1, matchers=matchers, lateness=_disorder(events)
        )
        processor.run(
            events[i : i + batch_events] for i in range(0, len(events), batch_events)
        )

        batch = SerialExecutor(engine="columnar").execute(
            _ingest(jobs, files, transfers),
            [WindowPlan(T0, T1)],
            matchers=[RM3Matcher(KNOWN, threshold=threshold), RM2Matcher(KNOWN)],
        )[0]
        stream = processor.report()
        assert stream.methods == batch.methods
        for m in batch.methods:
            assert stream[m].matched_pairs() == batch[m].matched_pairs()
            assert stream[m] == batch[m]  # bit-identical accumulation

    def test_incremental_matcher_accepts_rm3(self):
        processor = StreamProcessor(T0, T1, matchers=[RM3Matcher(KNOWN)])
        assert [m.name for m in processor.matcher.matchers] == ["rm3"]


# -- evaluation hardening ---------------------------------------------------------


def _result(method, pairs_by_job, jobs_by_id, transfers_by_id):
    matches = [
        JobMatch(job=jobs_by_id[pid], transfers=[transfers_by_id[r] for r in rows])
        for pid, rows in pairs_by_job
    ]
    return MatchResult(
        method=method, matches=matches, n_jobs_considered=len(jobs_by_id),
        n_transfers_considered=len(transfers_by_id),
    )


class TestEvaluationHardening:
    def setup_method(self):
        self.jobs = [make_job(pandaid=1), make_job(pandaid=2)]
        self.transfers = [make_transfer(row_id=1), make_transfer(row_id=2)]
        self.jobs_by_id = {j.pandaid: j for j in self.jobs}
        self.transfers_by_id = {t.row_id: t for t in self.transfers}
        self.truth = GroundTruth()
        self.truth.link(1, 1, source_site="SITE-A", destination_site="SITE-A")
        self.truth.link(2, 2, source_site="SITE-A", destination_site="SITE-A")

    def test_empty_assertions_have_defined_precision(self):
        ev = evaluate_against_truth(
            _result("rm3", [], self.jobs_by_id, self.transfers_by_id),
            self.truth, self.jobs, self.transfers,
        )
        assert ev.pair_precision == 1.0 and ev.job_precision == 1.0
        assert ev.pair_recall == 0.0  # truth was visible, nothing found
        assert ev.pair_f1 == 0.0

    def test_no_visible_truth_has_defined_recall(self):
        ev = evaluate_against_truth(
            _result("rm3", [], self.jobs_by_id, self.transfers_by_id),
            GroundTruth(), self.jobs, self.transfers,
        )
        assert ev.pair_recall == 1.0 and ev.job_recall == 1.0
        assert ev.pair_precision == 1.0
        assert ev.n_true_pairs_visible == 0

    def test_out_of_window_assertions_excluded_from_precision(self):
        ghost_job = make_job(pandaid=99)
        result = _result(
            "rm3",
            [(1, [1]), (99, [1])],
            {**self.jobs_by_id, 99: ghost_job},
            self.transfers_by_id,
        )
        ev = evaluate_against_truth(result, self.truth, self.jobs, self.transfers)
        assert ev.n_asserted_pairs == 2
        assert ev.n_asserted_outside_window == 1
        assert ev.pair_precision == 1.0  # the ghost pair is not a false positive

    def test_f1_is_harmonic_mean(self):
        result = _result("rm3", [(1, [1, 2])], self.jobs_by_id, self.transfers_by_id)
        ev = evaluate_against_truth(result, self.truth, self.jobs, self.transfers)
        assert ev.pair_precision == 0.5  # (1,2) is wrong, (1,1) right
        assert ev.pair_recall == 0.5
        assert ev.pair_f1 == pytest.approx(0.5)

    def test_visible_true_pairs_requires_both_endpoints(self):
        assert visible_true_pairs(self.truth, self.jobs[:1], self.transfers) == {(1, 1)}

    def test_site_recovery_scored_against_truth(self):
        t_unknown = make_transfer(row_id=1, dst=UNKNOWN_SITE)
        t_blank_upload = make_transfer(
            row_id=2, src="", dst="SITE-B", download=False, upload=True
        )
        t_known = make_transfer(row_id=3, dst="SITE-A")
        truth = GroundTruth()
        truth.link(1, 1, source_site="SITE-B", destination_site="SITE-A")  # correct
        truth.link(2, 1, source_site="SITE-B", destination_site="SITE-A")  # wrong src
        truth.link(3, 1, source_site="SITE-B", destination_site="SITE-A")  # not recoverable
        result = _result(
            "rm3", [(1, [1, 2, 3])], self.jobs_by_id,
            {1: t_unknown, 2: t_blank_upload, 3: t_known},
        )
        rec = recover_unknown_sites(result, truth)
        assert rec.n_recoverable == 2  # the labeled transfer is skipped
        assert rec.n_correct == 1  # implied dst SITE-A right; implied src wrong
        assert rec.accuracy == 0.5

    def test_site_recovery_vacuous_accuracy(self):
        result = _result("rm3", [], self.jobs_by_id, self.transfers_by_id)
        assert recover_unknown_sites(result, GroundTruth()).accuracy == 1.0
