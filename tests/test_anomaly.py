"""Tests for the anomaly detectors."""

import numpy as np
import pytest

from repro.core.anomaly.imbalance import assess_imbalance, gini_coefficient
from repro.core.anomaly.inference import (
    infer_from_matches,
    infer_from_twins,
    infer_unknown_sites,
    inference_accuracy,
)
from repro.core.anomaly.redundant import find_redundant_transfers, total_wasted_bytes
from repro.core.anomaly.report import build_anomaly_report
from repro.core.anomaly.staging import (
    StagingSeverity,
    classify_staging,
    failure_rate_by_severity,
    find_staging_anomalies,
)
from repro.core.anomaly.underutil import assess_job, find_underutilization
from repro.core.analysis.matrix import build_transfer_matrix
from repro.core.matching.base import JobMatch
from repro.telemetry.records import UNKNOWN_SITE

from tests.helpers import make_job, make_transfer


class TestRedundant:
    def test_same_file_same_dest_twice(self):
        ts = [
            make_transfer(row_id=1, lfn="f", dst="A", src="A", start=100.0, end=150.0),
            make_transfer(row_id=2, lfn="f", dst="A", src="A", start=1000.0, end=1050.0),
        ]
        groups = find_redundant_transfers(ts)
        assert len(groups) == 1
        assert groups[0].n_copies == 2
        assert groups[0].wasted_bytes == 1000

    def test_different_destinations_not_redundant(self):
        ts = [
            make_transfer(row_id=1, lfn="f", dst="A"),
            make_transfer(row_id=2, lfn="f", dst="B", start=200.0, end=300.0),
        ]
        assert find_redundant_transfers(ts) == []

    def test_unknown_folds_into_known_group(self):
        """The Fig 12 situation: first copy's destination lost."""
        ts = [
            make_transfer(row_id=1, lfn="f", dst=UNKNOWN_SITE, start=100.0, end=150.0),
            make_transfer(row_id=2, lfn="f", dst="CERN-PROD", start=1000.0, end=1100.0),
        ]
        groups = find_redundant_transfers(ts)
        assert len(groups) == 1
        assert groups[0].destination == "CERN-PROD"

    def test_outside_window_not_grouped(self):
        ts = [
            make_transfer(row_id=1, lfn="f", dst="A", start=0.0, end=10.0),
            make_transfer(row_id=2, lfn="f", dst="A", start=10 * 24 * 3600.0,
                          end=10 * 24 * 3600.0 + 10),
        ]
        assert find_redundant_transfers(ts, window_seconds=3600.0) == []

    def test_uploads_ignored_by_default(self):
        ts = [
            make_transfer(row_id=1, lfn="f", dst="A", download=False, upload=True),
            make_transfer(row_id=2, lfn="f", dst="A", download=False, upload=True,
                          start=200.0, end=300.0),
        ]
        assert find_redundant_transfers(ts) == []

    def test_total_wasted(self):
        ts = [
            make_transfer(row_id=1, lfn="f", dst="A", size=500),
            make_transfer(row_id=2, lfn="f", dst="A", size=500, start=300.0, end=400.0),
        ]
        assert total_wasted_bytes(find_redundant_transfers(ts)) == 500


def jm(transfers, **kw) -> JobMatch:
    return JobMatch(job=make_job(**kw), transfers=transfers)


class TestStaging:
    def test_unremarkable_none(self):
        m = jm([make_transfer(start=0.0, end=5.0)], creation=0.0, start=1000.0, end=2000.0)
        assert classify_staging(m) is None

    def test_elevated(self):
        m = jm([make_transfer(start=0.0, end=200.0)], creation=0.0, start=1000.0, end=2000.0)
        a = classify_staging(m)
        assert a is not None and a.severity is StagingSeverity.ELEVATED

    def test_dominant(self):
        m = jm([make_transfer(start=0.0, end=900.0)], creation=0.0, start=1000.0, end=2000.0)
        assert classify_staging(m).severity is StagingSeverity.DOMINANT

    def test_spanning_trumps(self):
        m = jm([make_transfer(start=0.0, end=1500.0)], creation=0.0, start=1000.0, end=2000.0)
        a = classify_staging(m)
        assert a.severity is StagingSeverity.SPANNING
        assert a.n_spanning == 1

    def test_sorted_by_severity(self):
        spanning = jm([make_transfer(start=0.0, end=1500.0)],
                      creation=0.0, start=1000.0, end=2000.0)
        elevated = jm([make_transfer(start=0.0, end=200.0)],
                      creation=0.0, start=1000.0, end=2000.0)
        out = find_staging_anomalies([elevated, spanning])
        assert [a.severity for a in out] == [StagingSeverity.SPANNING, StagingSeverity.ELEVATED]

    def test_failure_rate_by_severity(self):
        spanning_failed = jm([make_transfer(start=0.0, end=1500.0)],
                             creation=0.0, start=1000.0, end=2000.0, status="failed")
        out = find_staging_anomalies([spanning_failed])
        rates = failure_rate_by_severity(out)
        assert rates[StagingSeverity.SPANNING] == 1.0


class TestUnderutilization:
    def test_sequential_with_headroom(self):
        m = jm([
            make_transfer(row_id=1, start=0.0, end=100.0),
            make_transfer(row_id=2, start=100.0, end=130.0),
        ])
        f = assess_job(m)
        assert f is not None and f.sequential
        assert f.parallelism_headroom_seconds == pytest.approx(30.0)

    def test_parallel_low_spread_ignored(self):
        m = jm([
            make_transfer(row_id=1, size=1000, start=0.0, end=10.0),
            make_transfer(row_id=2, size=1000, start=5.0, end=15.0),
        ])
        assert assess_job(m) is None

    def test_spread_only_flagged(self):
        m = jm([
            make_transfer(row_id=1, size=100000, start=0.0, end=10.0),
            make_transfer(row_id=2, size=10000, start=2.0, end=100.0),
        ])
        f = assess_job(m)
        assert f is not None and not f.sequential
        assert f.throughput_spread > 5

    def test_single_transfer_ignored(self):
        m = jm([make_transfer()])
        assert assess_job(m) is None

    def test_sorted_by_headroom(self):
        a = jm([make_transfer(row_id=1, start=0.0, end=100.0),
                make_transfer(row_id=2, start=100.0, end=200.0)])
        b = jm([make_transfer(row_id=3, start=0.0, end=10.0),
                make_transfer(row_id=4, start=10.0, end=20.0)])
        out = find_underutilization([b, a])
        assert out[0].parallelism_headroom_seconds >= out[1].parallelism_headroom_seconds


class TestImbalance:
    def test_gini_extremes(self):
        assert gini_coefficient(np.array([1.0, 1.0, 1.0])) == pytest.approx(0.0, abs=1e-9)
        concentrated = np.array([0.0] * 99 + [100.0])
        assert gini_coefficient(concentrated) > 0.95

    def test_gini_empty(self):
        assert gini_coefficient(np.array([])) == 0.0

    def test_assess_on_synthetic(self):
        ts = [make_transfer(row_id=1, src="A", dst="A", size=10**6)] + [
            make_transfer(row_id=2 + i, src="A", dst="B", size=10) for i in range(5)
        ]
        m = build_transfer_matrix(ts, ["A", "B", UNKNOWN_SITE])
        stats = assess_imbalance(m)
        assert stats.top1_share > 0.9
        assert stats.mean_to_geomean > 10

    def test_empty_matrix(self):
        m = build_transfer_matrix([], ["A", UNKNOWN_SITE])
        stats = assess_imbalance(m)
        assert stats.total_volume == 0 and stats.gini == 0.0


class TestInference:
    def test_job_based_download(self):
        m = jm([make_transfer(dst=UNKNOWN_SITE)], site="SITE-A")
        out = infer_from_matches([m])
        assert len(out) == 1
        assert out[0].inferred_site == "SITE-A"
        assert out[0].field == "destination_site"

    def test_job_based_upload(self):
        m = jm([make_transfer(src=UNKNOWN_SITE, download=False, upload=True)],
               site="SITE-A")
        out = infer_from_matches([m])
        assert out[0].field == "source_site"

    def test_twin_based(self):
        """Table 3: identical sizes pair the UNKNOWN record with its twin."""
        ts = [
            make_transfer(row_id=1, lfn="f", size=5243410528, dst=UNKNOWN_SITE,
                          start=100.0, end=130.0),
            make_transfer(row_id=2, lfn="f", size=5243410528, dst="CERN-PROD",
                          start=1000.0, end=1030.0),
        ]
        out = infer_from_twins(ts)
        assert len(out) == 1
        assert out[0].inferred_site == "CERN-PROD"
        assert out[0].method == "twin"

    def test_twin_requires_same_size(self):
        ts = [
            make_transfer(row_id=1, lfn="f", size=100, dst=UNKNOWN_SITE),
            make_transfer(row_id=2, lfn="f", size=101, dst="CERN-PROD",
                          start=300.0, end=400.0),
        ]
        assert infer_from_twins(ts) == []

    def test_job_takes_precedence(self):
        t_unknown = make_transfer(row_id=1, dst=UNKNOWN_SITE)
        twin = make_transfer(row_id=2, dst="OTHER", start=300.0, end=400.0)
        m = jm([t_unknown], site="SITE-A")
        out = infer_unknown_sites([m], [t_unknown, twin])
        by_row = {i.row_id: i for i in out}
        assert by_row[1].method == "job"
        assert by_row[1].inferred_site == "SITE-A"

    def test_accuracy_scoring(self):
        m = jm([make_transfer(row_id=7, dst=UNKNOWN_SITE)], site="SITE-A")
        out = infer_from_matches([m])
        assert inference_accuracy(out, {7: ("X", "SITE-A")}) == 1.0
        assert inference_accuracy(out, {7: ("X", "SITE-B")}) == 0.0

    def test_accuracy_empty(self):
        assert inference_accuracy([], {}) == 0.0


class TestAnomalyReportIntegration:
    def test_full_report_on_study(self, small_report, small_telemetry, small_study):
        report = build_anomaly_report(
            small_report["rm2"].matched_jobs(),
            small_telemetry.transfers,
            site_names=small_study.harness.topology.site_names(),
        )
        assert report.imbalance is not None
        assert report.imbalance.total_volume > 0
        assert len(report.summary_lines()) >= 4
        assert "imbalance" in str(report)

    def test_inferences_mostly_correct_on_study(self, small_report, small_telemetry,
                                                small_study):
        report = build_anomaly_report(
            small_report["rm2"].matched_jobs(),
            small_telemetry.transfers,
            site_names=small_study.harness.topology.site_names(),
        )
        if len(report.inferences) >= 10:
            acc = inference_accuracy(report.inferences, small_telemetry.ground_truth.true_sites)
            assert acc > 0.5
