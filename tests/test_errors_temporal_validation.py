"""Tests for error-pattern analysis, temporal imbalance, and validation."""

import numpy as np
import pytest

from repro.core.analysis.errors import (
    ErrorFamily,
    ErrorShift,
    compare_error_mixes,
    error_mix,
    family_of,
    site_error_profiles,
    top_error_codes,
)
from repro.core.analysis.temporal import (
    submission_profile,
    transfer_volume_profile,
)
from repro.panda.errors import ErrorCode
from repro.telemetry.validation import assess_quality

from tests.helpers import make_job, make_transfer


def failed_job(code: int, site="S", pandaid=1):
    j = make_job(pandaid=pandaid, site=site, status="failed")
    j.error_code = code
    return j


class TestErrorFamilies:
    def test_families(self):
        assert family_of(int(ErrorCode.STAGEIN_FAILED)) is ErrorFamily.DATA
        assert family_of(int(ErrorCode.PAYLOAD_OVERLAY)) is ErrorFamily.COMPUTE
        assert family_of(int(ErrorCode.SITE_SERVICE_ERROR)) is ErrorFamily.SITE
        assert family_of(0) is ErrorFamily.NONE
        assert family_of(99999) is ErrorFamily.OTHER

    def test_error_mix(self):
        jobs = [
            make_job(pandaid=1),
            failed_job(int(ErrorCode.PAYLOAD_OVERLAY), pandaid=2),
            failed_job(int(ErrorCode.STAGEIN_FAILED), pandaid=3),
            failed_job(int(ErrorCode.PAYLOAD_SEGFAULT), pandaid=4),
        ]
        mix = error_mix(jobs)
        assert mix.n_failed == 3
        assert mix.failure_rate == pytest.approx(0.75)
        assert mix.family_share(ErrorFamily.COMPUTE) == pytest.approx(2 / 3)
        assert mix.dominant_family() is ErrorFamily.COMPUTE

    def test_empty_mix(self):
        mix = error_mix([])
        assert mix.failure_rate == 0.0
        assert mix.dominant_family() is ErrorFamily.NONE

    def test_site_profiles(self):
        jobs = [failed_job(int(ErrorCode.PAYLOAD_OVERLAY), site="BAD", pandaid=i)
                for i in range(12)]
        jobs += [make_job(pandaid=100 + i, site="GOOD") for i in range(12)]
        profiles = site_error_profiles(jobs, min_jobs=10)
        assert profiles[0].site == "BAD"
        assert profiles[0].failure_rate == 1.0
        assert profiles[-1].failure_rate == 0.0

    def test_shift_detection(self):
        baseline = [failed_job(int(ErrorCode.STAGEIN_FAILED), pandaid=i)
                    for i in range(10)]
        alternative = [failed_job(int(ErrorCode.PAYLOAD_OVERLAY), pandaid=i)
                       for i in range(10)]
        shift = compare_error_mixes(baseline, alternative)
        assert shift.shifted_toward_compute
        assert shift.family_delta(ErrorFamily.DATA) == pytest.approx(-1.0)
        assert "compute" in shift.summary()

    def test_top_codes(self):
        jobs = [failed_job(int(ErrorCode.PAYLOAD_OVERLAY), pandaid=i) for i in range(3)]
        jobs.append(failed_job(int(ErrorCode.STAGEIN_FAILED), pandaid=9))
        mix = error_mix(jobs)
        ranked = top_error_codes(mix, top=2)
        assert ranked[0][0] == int(ErrorCode.PAYLOAD_OVERLAY)
        assert ranked[0][1] == 3
        assert ranked[0][2] == pytest.approx(75.0)

    def test_on_study(self, small_telemetry):
        mix = error_mix(small_telemetry.jobs)
        assert 0.0 < mix.failure_rate < 0.5
        # compute errors dominate at baseline (healthy staging)
        assert mix.dominant_family() in (ErrorFamily.COMPUTE, ErrorFamily.SITE)


class TestTemporalProfiles:
    def test_volume_bucketing(self):
        ts = [
            make_transfer(row_id=1, size=100, start=10.0),
            make_transfer(row_id=2, size=200, start=3610.0, end=3700.0),
        ]
        prof = transfer_volume_profile(ts, 0.0, 7200.0, 3600.0)
        assert list(prof.volume) == [100.0, 200.0]
        assert prof.total == 300.0

    def test_out_of_window_ignored(self):
        ts = [make_transfer(start=99999.0, end=99999.5)]
        prof = transfer_volume_profile(ts, 0.0, 3600.0)
        assert prof.total == 0.0

    def test_imbalance_measures(self):
        ts = [make_transfer(row_id=i, size=10, start=float(i)) for i in range(10)]
        ts.append(make_transfer(row_id=99, size=10000, start=5000.0, end=5100.0))
        prof = transfer_volume_profile(ts, 0.0, 7200.0, 3600.0)
        assert prof.peak_to_mean() > 1.0
        assert prof.temporal_gini() > 0.4
        assert prof.busiest_share(0.5) > 0.9

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            transfer_volume_profile([], 5.0, 5.0)

    def test_submission_profile(self):
        jobs = [make_job(pandaid=i, creation=float(i * 1800)) for i in range(4)]
        prof = submission_profile(jobs, 0.0, 7200.0, 3600.0)
        assert list(prof.volume) == [2.0, 2.0]

    def test_hour_of_day_profile_shape(self):
        ts = [make_transfer(row_id=i, size=100, start=i * 3600.0 + 10,
                            end=i * 3600.0 + 20) for i in range(48)]
        prof = transfer_volume_profile(ts, 0.0, 48 * 3600.0, 3600.0)
        hod = prof.hour_of_day_profile()
        assert hod.shape == (24,)
        assert np.all(hod >= 0)

    def test_study_is_temporally_imbalanced(self, small_telemetry, small_study):
        """§3.2: significant temporal imbalance."""
        t0, t1 = small_study.harness.window
        prof = transfer_volume_profile(small_telemetry.transfers, t0, t1)
        assert prof.temporal_gini() > 0.2
        assert prof.peak_to_trough() > 2.0


class TestQualityReport:
    def test_clean_records(self):
        jobs = [make_job(pandaid=1, nin=100)]
        files = [__import__("tests.helpers", fromlist=["make_file"]).make_file(pandaid=1)]
        transfers = [make_transfer()]
        rep = assess_quality(jobs, files, transfers)
        assert rep.clean
        assert rep.n_jobs_without_files == 0

    def test_duplicate_pandaids_flagged(self):
        jobs = [make_job(pandaid=1), make_job(pandaid=1)]
        rep = assess_quality(jobs, [], [])
        assert any("duplicate pandaids" in i for i in rep.issues)

    def test_duplicate_row_ids_flagged(self):
        ts = [make_transfer(row_id=5), make_transfer(row_id=5)]
        rep = assess_quality([], [], ts)
        assert any("row_ids" in i for i in rep.issues)

    def test_jobs_without_files_counted(self):
        rep = assess_quality([make_job(pandaid=1, nin=100)], [], [])
        assert rep.n_jobs_without_files == 1

    def test_unknown_site_percentages(self):
        ts = [make_transfer(row_id=1, dst="UNKNOWN"), make_transfer(row_id=2)]
        rep = assess_quality([], [], ts)
        assert rep.pct_unknown_destination == pytest.approx(50.0)

    def test_study_telemetry_is_consistent(self, small_telemetry):
        """Degradation injects *defects*, never *inconsistencies*."""
        rep = assess_quality(
            small_telemetry.jobs, small_telemetry.files, small_telemetry.transfers)
        assert rep.clean, rep.issues
        assert rep.pct_transfers_with_taskid < 80.0
        assert rep.pct_unknown_destination > 0.0
        assert "taskid coverage" in rep.summary()
