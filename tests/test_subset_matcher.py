"""Tests for the subset-sum matcher (the paper's skipped refinement)."""

import pytest

from repro.core.matching.base import CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.subset import SubsetMatcher

from tests.helpers import make_file, make_job, make_transfer, matching_triple


def run_one(matcher, job, files, transfers):
    index = CandidateIndex(files, transfers)
    return matcher.run([job], index, n_transfers_considered=len(transfers))


class TestSubsetMatcher:
    def test_agrees_with_exact_on_clean_set(self):
        job, files, transfers = matching_triple()
        exact = run_one(ExactMatcher(), job, files, transfers)
        subset = run_one(SubsetMatcher(), job, files, transfers)
        assert exact.matched_transfer_ids() == subset.matched_transfer_ids()

    def test_recovers_polluted_set(self):
        """The Fig 12 situation: duplicates double S_j; exact fails,
        subset selection recovers one-copy-per-file."""
        job, files, transfers = matching_triple(n_files=2)
        dupes = [
            make_transfer(row_id=100 + i, lfn=f"f{i}", size=1000,
                          start=500.0 + i, end=600.0 + i)
            for i in range(2)
        ]
        assert run_one(ExactMatcher(), job, files, transfers + dupes).n_matched_jobs == 0
        res = run_one(SubsetMatcher(), job, files, transfers + dupes)
        assert res.n_matched_jobs == 1
        match = res.matches[0]
        assert match.n_transfers == 2
        assert len({t.lfn for t in match.transfers}) == 2  # one per file

    def test_selected_subset_sums_exactly(self):
        job, files, transfers = matching_triple(n_files=3)
        extra = make_transfer(row_id=50, lfn="f0", size=1000, start=5.0, end=6.0)
        res = run_one(SubsetMatcher(), job, files, transfers + [extra])
        assert res.n_matched_jobs == 1
        assert sum(t.file_size for t in res.matches[0].transfers) == job.ninputfilebytes

    def test_partial_set_unmatched(self):
        """Unlike RM1, subset matching still demands an exact byte total."""
        job, files, transfers = matching_triple(n_files=3)
        res = run_one(SubsetMatcher(), job, files, transfers[:2])
        assert res.n_matched_jobs == 0

    def test_output_target_used(self):
        job = make_job(nin=0, nout=2000)
        files = [make_file(lfn=f"o{i}", size=1000, ftype="output") for i in range(2)]
        ts = [
            make_transfer(row_id=i + 1, lfn=f"o{i}", size=1000,
                          download=False, upload=True)
            for i in range(2)
        ]
        res = run_one(SubsetMatcher(), job, files, ts)
        assert res.n_matched_jobs == 1

    def test_respects_time_and_site(self):
        job, files, transfers = matching_triple(n_files=1)
        transfers[0].destination_site = "ELSEWHERE"
        assert run_one(SubsetMatcher(), job, files, transfers).n_matched_jobs == 0

    def test_budget_fallback(self):
        """With a tiny node budget the matcher falls back whole-set."""
        job, files, transfers = matching_triple(n_files=3)
        matcher = SubsetMatcher(max_nodes=1)
        res = run_one(matcher, job, files, transfers)
        # whole set sums correctly, so the fallback still matches
        assert res.n_matched_jobs == 1
        assert matcher.fallbacks >= 1

    def test_superset_of_exact_on_study(self, small_report, small_study,
                                        small_telemetry):
        """Subset matching dominates exact matching (finds everything
        exact finds, plus pollution-rescued jobs)."""
        from repro.core.matching.pipeline import MatchingPipeline

        pipeline = MatchingPipeline(
            small_study.source, known_sites=small_study.harness.known_site_names())
        t0, t1 = small_study.harness.window
        report = pipeline.run(t0, t1, matchers=[
            ExactMatcher(small_study.harness.known_site_names()),
            SubsetMatcher(small_study.harness.known_site_names()),
        ])
        exact_jobs = {m.job.pandaid for m in report["exact"].matched_jobs()}
        subset_jobs = {m.job.pandaid for m in report["subset"].matched_jobs()}
        assert exact_jobs <= subset_jobs

    def test_precision_stays_perfect_on_study(self, small_study, small_telemetry):
        from repro.core.matching.evaluation import evaluate_against_truth
        from repro.core.matching.pipeline import MatchingPipeline

        pipeline = MatchingPipeline(
            small_study.source, known_sites=small_study.harness.known_site_names())
        t0, t1 = small_study.harness.window
        report = pipeline.run(t0, t1, matchers=[
            SubsetMatcher(small_study.harness.known_site_names())])
        jobs = small_study.source.user_jobs_completed_in(t0, t1)
        transfers = small_study.source.transfers_started_in(t0, t1)
        ev = evaluate_against_truth(
            report["subset"], small_telemetry.ground_truth, jobs, transfers)
        assert ev.pair_precision >= 0.9
