"""Parity tests for the analysis dataplane (``--frame row|columnar``).

The contract mirrors the matching-engine one: for any window —
including degraded ones — every vectorized analysis over the
:class:`~repro.columnar.frame.MatchFrame` must return **bit-identical**
output to the reference per-record loops, for every matching method,
on results produced by either join engine.  Floats are compared with
``==``, never with tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.columnar import DEFAULT_FRAME, FRAMES, validate_frame
from repro.core.analysis.matrix import build_transfer_matrix
from repro.core.analysis.queuing import (
    correlation_size_vs_time,
    geomean_transfer_pct,
    mean_transfer_pct,
    timing_table,
    timings_for_result,
    top_jobs_breakdown,
)
from repro.core.analysis.sites import build_dashboards
from repro.core.analysis.summary import (
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.analysis.temporal import submission_profile, transfer_volume_profile
from repro.core.analysis.thresholds import StatusCombo, threshold_sweep_result
from repro.exec import (
    ArtifactCache,
    ParallelExecutor,
    SerialExecutor,
    WindowPlan,
    run_analyses,
)
from repro.telemetry.records import UNKNOWN_SITE

from tests.test_columnar import KNOWN, _ingest, degraded_windows

PLAN = WindowPlan(0.0, 10_000.0)


def _reports(source):
    """One report per join engine, over the same window."""
    col = SerialExecutor(engine="columnar").execute(source, [PLAN], known_sites=KNOWN)[0]
    row = SerialExecutor(engine="row").execute(source, [PLAN], known_sites=KNOWN)[0]
    return {"columnar": col, "row": row}


def _decoded(frame, name):
    return [frame.interner.decode(c) for c in getattr(frame, name).tolist()]


def assert_frames_equal(a, b):
    """Field-by-field equality, decoding interned columns (the two
    builders may hold different interners)."""
    assert a.pandaid.tolist() == b.pandaid.tolist()
    for name in ("status", "taskstatus", "site"):
        assert _decoded(a, name) == _decoded(b, name), name
    for name in ("creation", "start", "end", "t_start", "t_end"):
        assert np.array_equal(getattr(a, name), getattr(b, name), equal_nan=True), name
    for name in (
        "n_transfers",
        "n_local",
        "transfer_bytes",
        "class_code",
        "job_offsets",
        "t_row_id",
        "t_size",
        "t_local",
    ):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestFrameSelection:
    def test_validate_frame(self):
        assert set(FRAMES) == {"row", "columnar"}
        assert DEFAULT_FRAME in FRAMES
        for f in FRAMES:
            assert validate_frame(f) == f
        with pytest.raises(ValueError):
            validate_frame("arrow")


class TestFrameBuilders:
    @given(degraded_windows())
    @settings(max_examples=30, deadline=None)
    def test_engine_frame_matches_row_lowering(self, window):
        """from_candidates (engine-attached) == from_matches (fallback)."""
        reports = _reports(_ingest(*window))
        for method in reports["columnar"].methods:
            eager = reports["columnar"][method].frame()
            lazy = reports["row"][method].frame()
            assert_frames_equal(eager, lazy)
            assert eager.matched_row_ids().tolist() == lazy.matched_row_ids().tolist()
            assert eager.n_matched_transfers == lazy.n_matched_transfers
            assert eager.local_remote_split() == lazy.local_remote_split()
            assert eager.jobs_by_class() == lazy.jobs_by_class()

    def test_frame_and_timing_table_cached(self, small_report):
        result = small_report["exact"]
        assert result.frame() is result.frame()
        assert timing_table(result) is timing_table(result)

    @given(degraded_windows())
    @settings(max_examples=20, deadline=None)
    def test_frame_summaries_match_result(self, window):
        """Frame-level counts == the MatchResult reference methods."""
        for result in _reports(_ingest(*window))["columnar"].results.values():
            frame = result.frame()
            assert len(frame) == result.n_matched_jobs
            assert frame.n_matched_transfers == result.n_matched_transfers
            assert frame.local_remote_split() == result.local_remote_split()
            assert frame.jobs_by_class() == result.jobs_by_class()


class TestTimingParity:
    @given(degraded_windows())
    @settings(max_examples=30, deadline=None)
    def test_timings_bit_identical(self, window):
        for report in _reports(_ingest(*window)).values():
            for method in report.methods:
                result = report[method]
                row = timings_for_result(result, frame="row")
                col = timings_for_result(result, frame="columnar")
                assert col == row  # frozen dataclasses: exact floats

    @given(degraded_windows())
    @settings(max_examples=20, deadline=None)
    def test_aggregates_bit_identical(self, window):
        for report in _reports(_ingest(*window)).values():
            result = report["exact"]
            row = timings_for_result(result, frame="row")
            table = timing_table(result)
            assert mean_transfer_pct(table) == mean_transfer_pct(row)
            assert geomean_transfer_pct(table) == geomean_transfer_pct(row)
            assert correlation_size_vs_time(table) == correlation_size_vs_time(row)

    @given(degraded_windows())
    @settings(max_examples=20, deadline=None)
    def test_top_jobs_bit_identical(self, window):
        for report in _reports(_ingest(*window)).values():
            for method in report.methods:
                result = report[method]
                row = timings_for_result(result, frame="row")
                table = timing_table(result)
                for locality in ("local", "remote"):
                    assert table.top_jobs(locality, top=5) == top_jobs_breakdown(
                        row, locality, top=5
                    )


class TestThresholdParity:
    @given(degraded_windows())
    @settings(max_examples=25, deadline=None)
    def test_sweep_bit_identical(self, window):
        for report in _reports(_ingest(*window)).values():
            for method in report.methods:
                result = report[method]
                row = threshold_sweep_result(result, frame="row")
                col = threshold_sweep_result(result, frame="columnar")
                assert col.thresholds == row.thresholds
                assert col.n_jobs == row.n_jobs
                for combo in StatusCombo:
                    assert col.cumulative[combo] == row.cumulative[combo]


class TestSummaryParity:
    @given(degraded_windows())
    @settings(max_examples=25, deadline=None)
    def test_headline_and_method_tables(self, window):
        for report in _reports(_ingest(*window)).values():
            assert headline_stats(report, frame="columnar") == headline_stats(
                report, frame="row"
            )
            assert method_comparison_transfers(
                report, frame="columnar"
            ) == method_comparison_transfers(report, frame="row")
            assert method_comparison_jobs(
                report, frame="columnar"
            ) == method_comparison_jobs(report, frame="row")

    @given(degraded_windows())
    @settings(max_examples=25, deadline=None)
    def test_activity_breakdown_with_columns(self, window):
        source = _ingest(*window)
        artifacts = ArtifactCache(source, engine="columnar").get(PLAN)
        reports = _reports(source)
        for report in reports.values():
            result = report["exact"]
            assert activity_breakdown(
                result, artifacts.transfers, columns=artifacts.columns
            ) == activity_breakdown(result, artifacts.transfers)


class TestWindowAnalysesParity:
    """Analyses over the window's packs (no match frame involved)."""

    @given(degraded_windows())
    @settings(max_examples=25, deadline=None)
    def test_site_dashboards(self, window):
        jobs, files, transfers = window
        artifacts = ArtifactCache(_ingest(*window), engine="columnar").get(PLAN)
        fast = build_dashboards(artifacts.jobs, artifacts.transfers, columns=artifacts.columns)
        ref = build_dashboards(artifacts.jobs, artifacts.transfers)
        assert list(fast) == list(ref)  # incl. insertion order
        for site in ref:
            f, r = fast[site], ref[site]
            assert (f.site, f.n_jobs, f.n_failed) == (r.site, r.n_jobs, r.n_failed)
            assert f.queue_times == r.queue_times
            assert (f.bytes_in, f.bytes_out, f.bytes_local) == (
                r.bytes_in, r.bytes_out, r.bytes_local)
            assert f.error_mix == r.error_mix

    @given(degraded_windows())
    @settings(max_examples=25, deadline=None)
    def test_matrix_and_temporal(self, window):
        artifacts = ArtifactCache(_ingest(*window), engine="columnar").get(PLAN)
        names = sorted({*KNOWN, UNKNOWN_SITE})
        fast = build_transfer_matrix(artifacts.transfers, names, columns=artifacts.columns)
        ref = build_transfer_matrix(artifacts.transfers, names)
        assert np.array_equal(fast.volume, ref.volume)
        for fn, records in (
            (transfer_volume_profile, artifacts.transfers),
            (submission_profile, artifacts.jobs),
        ):
            fast_p = fn(records, PLAN.t0, PLAN.t1, columns=artifacts.columns)
            ref_p = fn(records, PLAN.t0, PLAN.t1)
            assert np.array_equal(fast_p.volume, ref_p.volume)


class TestRunAnalyses:
    """The fan-out entry point: same numbers serial, parallel, row."""

    def _assert_batches_equal(self, a, b):
        assert list(a) == list(b)
        for key in a:
            if key == "thresholds":
                assert a[key].cumulative == b[key].cumulative
                assert a[key].n_jobs == b[key].n_jobs
            elif key in ("volume", "submissions"):
                assert np.array_equal(a[key].volume, b[key].volume)
            elif key == "sites":
                assert list(a[key]) == list(b[key])
                for site in a[key]:
                    assert a[key][site].n_jobs == b[key][site].n_jobs
                    assert a[key][site].queue_times == b[key][site].queue_times
            else:
                assert a[key] == b[key], key

    def test_serial_equals_row_frame(self, small_study):
        t0, t1 = small_study.harness.window
        plan = WindowPlan(t0, t1)
        known = small_study.harness.known_site_names()
        col = run_analyses(small_study.source, plan, known_sites=known)
        row = run_analyses(
            small_study.source, plan, known_sites=known, engine="row", frame="row"
        )
        self._assert_batches_equal(col, row)

    def test_parallel_equals_serial_on_one_pool(self, small_study):
        t0, t1 = small_study.harness.window
        plan = WindowPlan(t0, t1)
        known = small_study.harness.known_site_names()
        serial = run_analyses(small_study.source, plan, known_sites=known)
        with ParallelExecutor(workers=2) as ex:
            # interleave: a sweep, the analysis batch, and a bare map
            ex.execute(small_study.source, [plan], known_sites=known)
            parallel = run_analyses(
                small_study.source, plan, known_sites=known, executor=ex
            )
            assert ex.map(abs, [-2, 3]) == [2, 3]
            assert ex.pool_inits == 1
        self._assert_batches_equal(serial, parallel)

    def test_unknown_spec_rejected(self, small_study):
        t0, t1 = small_study.harness.window
        with pytest.raises(ValueError):
            run_analyses(
                small_study.source,
                WindowPlan(t0, t1),
                ["no_such_analysis"],
                known_sites=small_study.harness.known_site_names(),
            )

    def test_study_analyses_entry_point(self, small_study):
        batch = small_study.analyses(specs=("headline", "thresholds"))
        assert set(batch) == {"headline", "thresholds"}
        assert batch["headline"].n_matched_jobs > 0
