"""Window-boundary regression tests (``repro.window``).

Every window cut in the repo — collector bisect, OpenSearchLike field
indexes, sharded PackSource searchsorted cuts, event-log trimming, and
stream ingest — must agree on the half-open convention ``[t0, t1)``:
records exactly at t0 are IN, records exactly at t1 are OUT.  These
tests pin that agreement with records placed exactly on the
boundaries (and, for the sharded source, exactly on shard seams).
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.metastore.opensearch import OpenSearchLike
from repro.metastore.packsource import PackSource
from repro.stream import EventLog, StreamProcessor
from repro.telemetry.collector import TelemetryCollector
from repro.window import in_window

from tests.helpers import make_file, make_job, make_transfer

T0, T1 = 1000.0, 2000.0

#: (tag, event time, expected membership in [T0, T1))
BOUNDARY_TIMES = [
    (1, T0 - 0.5, False),   # just before the window
    (2, T0, True),          # exactly at t0 -> IN
    (3, (T0 + T1) / 2, True),
    (4, T1 - 0.5, True),    # just inside the far edge
    (5, T1, False),         # exactly at t1 -> OUT
    (6, T1 + 0.5, False),
]

EXPECTED = {tag for tag, _, keep in BOUNDARY_TIMES if keep}


def boundary_jobs():
    return [make_job(pandaid=tag, end=t) for tag, t, _ in BOUNDARY_TIMES]


def boundary_transfers():
    return [make_transfer(row_id=tag, start=t) for tag, t, _ in BOUNDARY_TIMES]


def test_in_window_is_half_open():
    assert in_window(T0, T0, T1)
    assert not in_window(T1, T0, T1)
    assert not in_window(T0 - 1e-9, T0, T1)
    assert in_window(T1 - 1e-9, T0, T1)
    assert not in_window(T0, T0, T0)  # empty window contains nothing


def test_collector_bisect_matches_convention():
    collector = TelemetryCollector(catalog=None)
    for tag, t, _ in BOUNDARY_TIMES:
        collector.on_transfer(SimpleNamespace(starttime=t, tag=tag))
        collector.on_job_done(SimpleNamespace(pandaid=tag, end_time=t))
    assert {e.tag for e in collector.transfers_in_window(T0, T1)} == EXPECTED
    assert {j.pandaid for j in collector.jobs_completed_in_window(T0, T1)} == EXPECTED


def test_field_index_queries_match_convention():
    source = OpenSearchLike()
    source.ingest_batch(jobs=boundary_jobs(), transfers=boundary_transfers())
    assert {j.pandaid for j in source.jobs_completed_in(T0, T1)} == EXPECTED
    assert {t.row_id for t in source.transfers_started_in(T0, T1)} == EXPECTED
    jobs, _, transfers, _ = source.materialize_window(T0, T1)
    assert {j.pandaid for j in jobs} == EXPECTED
    assert {t.row_id for t in transfers} == EXPECTED


def test_sharded_pack_source_matches_convention():
    # shard_seconds=500 puts T0 and T1 exactly on shard seams: routing
    # may over-select shards, but the per-shard searchsorted cut must
    # still produce the exact half-open membership.
    source = PackSource.from_records(
        boundary_jobs(), [], boundary_transfers(), shard_seconds=500.0
    )
    assert {j.pandaid for j in source.jobs_completed_in(T0, T1)} == EXPECTED
    assert {t.row_id for t in source.transfers_started_in(T0, T1)} == EXPECTED
    jobs, _, transfers, _ = source.materialize_window(T0, T1)
    assert {j.pandaid for j in jobs} == EXPECTED
    assert {t.row_id for t in transfers} == EXPECTED


def test_event_log_trim_matches_convention():
    telemetry = SimpleNamespace(
        jobs=boundary_jobs(), files=[], transfers=boundary_transfers()
    )
    events = list(EventLog.from_telemetry(telemetry, T0, T1))
    jobs = {e.record.pandaid for e in events if hasattr(e.record, "pandaid")}
    transfers = {e.record.row_id for e in events if hasattr(e.record, "row_id")}
    assert jobs == EXPECTED and transfers == EXPECTED


def test_stream_ingest_matches_convention():
    # An untrimmed log (no bounds) hits the processor's own ingest
    # filter, which must apply the same convention.
    telemetry = SimpleNamespace(
        jobs=boundary_jobs(), files=[], transfers=boundary_transfers()
    )
    events = list(EventLog.from_telemetry(telemetry))
    processor = StreamProcessor(T0, T1, known_sites={"SITE-A"})
    processor.run([events])
    report = processor.report()
    assert report.n_jobs == len(EXPECTED)
    assert report.n_transfers == len(EXPECTED)
