"""Property tests over randomized degradation configurations.

One campaign's ground truth is degraded under many random defect
configurations; the matching invariants must hold under every one of
them — the strongest statement that the matchers' guarantees don't
depend on the calibrated defaults.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.evaluation import evaluate_against_truth
from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.opensearch import OpenSearchLike
from repro.rucio.activities import TransferActivity
from repro.telemetry.degradation import DegradationConfig, MetadataDegrader


@pytest.fixture(scope="module")
def campaign():
    """One small campaign whose collector is reused for every config."""
    from repro.grid.presets import build_mini
    from repro.scenarios.runtime import HarnessConfig, SimulationHarness
    from repro.workload.generator import WorkloadConfig

    h = SimulationHarness(
        HarnessConfig(
            seed=37,
            workload=WorkloadConfig(
                duration=12 * 3600.0,
                analysis_tasks_per_hour=10.0,
                production_tasks_per_hour=0.5,
                background_transfers_per_hour=20.0,
            ),
            drain=24 * 3600.0,
        ),
        topology=build_mini(seed=37),
    )
    h.run()
    return h


ACTIVITIES = [
    TransferActivity.ANALYSIS_DOWNLOAD,
    TransferActivity.ANALYSIS_UPLOAD,
    TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
]

prob = st.floats(min_value=0.0, max_value=0.9)


@st.composite
def random_config(draw):
    return DegradationConfig(
        p_drop_transfer=draw(st.floats(min_value=0.0, max_value=0.3)),
        p_drop_file=draw(st.floats(min_value=0.0, max_value=0.3)),
        p_drop_jeditaskid={a: draw(prob) for a in ACTIVITIES},
        p_unknown_destination={a: draw(prob) for a in ACTIVITIES},
        p_unknown_source={a: draw(prob) for a in ACTIVITIES},
        p_size_imprecise={a: draw(prob) for a in ACTIVITIES},
        p_drop_jeditaskid_default=draw(prob),
    )


@given(random_config(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_matching_invariants_under_any_degradation(campaign, cfg, seed):
    degrader = MetadataDegrader(cfg, np.random.default_rng(seed))
    telemetry = degrader.degrade(campaign.collector, campaign.panda.tasks)
    source = OpenSearchLike.from_telemetry(telemetry)
    known = campaign.known_site_names()
    t0, t1 = campaign.window
    report = MatchingPipeline(source, known_sites=known).run(t0, t1)

    # nesting holds under any defect mix
    assert (report["exact"].matched_transfer_ids()
            <= report["rm1"].matched_transfer_ids()
            <= report["rm2"].matched_transfer_ids())

    # precision stays perfect: whatever is asserted is truly linked
    jobs = source.user_jobs_completed_in(t0, t1)
    transfers = source.transfers_started_in(t0, t1)
    for method in report.methods:
        ev = evaluate_against_truth(
            report[method], telemetry.ground_truth, jobs, transfers)
        if ev.n_asserted_pairs:
            assert ev.pair_precision == 1.0

    # production stays invisible under every configuration
    matched = report["rm2"].matched_transfer_ids()
    for t in telemetry.transfers:
        if t.activity.startswith("Production"):
            assert t.row_id not in matched
